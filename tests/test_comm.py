"""Communicator management: dup, create, split, groups, object collectives."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ActorFailure, MpiError
from repro.smpi import Group, constants, smpirun
from repro.surf import cluster


def run(app, n=4):
    return smpirun(app, n, cluster("cm", n))


class TestIdentity:
    def test_rank_and_size(self, run_app):
        def app(mpi):
            comm = mpi.COMM_WORLD
            return (comm.Get_rank(), comm.Get_size(), comm.rank, comm.size)

        result = run_app(app, 3)
        assert result.returns == [(0, 3, 0, 3), (1, 3, 1, 3), (2, 3, 2, 3)]

    def test_group_accessor(self, run_app):
        def app(mpi):
            return mpi.COMM_WORLD.Get_group().ranks

        assert run_app(app, 3).returns == [(0, 1, 2)] * 3


class TestDup:
    def test_dup_isolates_traffic(self, run_app):
        """A message on the dup cannot be received on the original."""

        def app(mpi):
            comm = mpi.COMM_WORLD
            dup = comm.Dup()
            if mpi.rank == 0:
                comm.Send(np.array([1.0]), 1, 5)
                dup.Send(np.array([2.0]), 1, 5)
            elif mpi.rank == 1:
                buf_dup = np.zeros(1)
                dup.Recv(buf_dup, 0, 5)  # must get the dup message
                buf = np.zeros(1)
                comm.Recv(buf, 0, 5)
                return (buf[0], buf_dup[0])

        result = run_app(app, 2)
        assert result.returns[1] == (1.0, 2.0)

    def test_dup_shares_context_across_ranks(self, run_app):
        def app(mpi):
            dup = mpi.COMM_WORLD.Dup()
            return dup.ctx

        result = run_app(app, 4)
        assert len(set(result.returns)) == 1

    def test_sequential_dups_get_distinct_contexts(self, run_app):
        def app(mpi):
            a = mpi.COMM_WORLD.Dup()
            b = mpi.COMM_WORLD.Dup()
            return (a.ctx, b.ctx)

        result = run_app(app, 2)
        assert result.returns[0] == result.returns[1]
        assert result.returns[0][0] != result.returns[0][1]


class TestCreateAndSplit:
    def test_create_subgroup(self, run_app):
        def app(mpi):
            comm = mpi.COMM_WORLD
            evens = Group(tuple(r for r in range(mpi.size) if r % 2 == 0))
            sub = comm.Create(evens)
            if mpi.rank % 2 == 0:
                assert sub is not None
                data = np.array([float(mpi.rank)])
                out = np.zeros(1)
                sub.Allreduce(data, out)
                return out[0]
            assert sub is None
            return None

        result = run_app(app, 4)
        assert result.returns == [2.0, None, 2.0, None]

    def test_create_rejects_foreign_ranks(self, run_app):
        def app(mpi):
            mpi.COMM_WORLD.Create(Group((0, 99)))

        with pytest.raises(ActorFailure):
            run_app(app, 2)

    def test_split_by_parity(self, run_app):
        def app(mpi):
            comm = mpi.COMM_WORLD
            sub = comm.Split(color=mpi.rank % 2, key=0)
            assert sub is not None
            data = np.array([1.0])
            out = np.zeros(1)
            sub.Allreduce(data, out)
            return (sub.Get_rank(), sub.Get_size(), out[0])

        result = run_app(app, 6)
        for rank, (sub_rank, sub_size, count) in enumerate(result.returns):
            assert sub_size == 3 and count == 3.0
            assert sub_rank == rank // 2

    def test_split_key_orders_ranks(self, run_app):
        def app(mpi):
            # reverse order via key
            sub = mpi.COMM_WORLD.Split(color=0, key=-mpi.rank)
            return sub.Get_rank()

        result = run_app(app, 4)
        assert result.returns == [3, 2, 1, 0]

    def test_split_undefined_opts_out(self, run_app):
        def app(mpi):
            color = 0 if mpi.rank < 2 else constants.UNDEFINED
            sub = mpi.COMM_WORLD.Split(color)
            if sub is None:
                return None
            return sub.Get_size()

        result = run_app(app, 4)
        assert result.returns == [2, 2, None, None]

    def test_freed_comm_is_unusable(self, run_app):
        def app(mpi):
            dup = mpi.COMM_WORLD.Dup()
            dup.Free()
            try:
                dup.Barrier()
            except MpiError:
                return "caught"

        assert run_app(app, 2).returns == ["caught", "caught"]


class TestObjectCollectives:
    def test_bcast_object(self, run_app):
        def app(mpi):
            payload = {"data": list(range(10))} if mpi.rank == 1 else None
            return mpi.COMM_WORLD.bcast(payload, root=1)

        result = run_app(app, 4)
        assert all(r == {"data": list(range(10))} for r in result.returns)

    def test_scatter_gather_objects(self, run_app):
        def app(mpi):
            comm = mpi.COMM_WORLD
            items = [f"item-{i}" for i in range(mpi.size)] if mpi.rank == 0 else None
            mine = comm.scatter(items, root=0)
            collected = comm.gather((mpi.rank, mine), root=0)
            return collected

        result = run_app(app, 3)
        assert result.returns[0] == [(0, "item-0"), (1, "item-1"), (2, "item-2")]
        assert result.returns[1] is None

    def test_allgather_object(self, run_app):
        def app(mpi):
            return mpi.COMM_WORLD.allgather(mpi.rank * 10)

        result = run_app(app, 4)
        assert all(r == [0, 10, 20, 30] for r in result.returns)

    def test_alltoall_object(self, run_app):
        def app(mpi):
            objs = [(mpi.rank, dst) for dst in range(mpi.size)]
            return mpi.COMM_WORLD.alltoall(objs)

        result = run_app(app, 3)
        for rank, got in enumerate(result.returns):
            assert got == [(src, rank) for src in range(3)]

    def test_reduce_allreduce_objects(self, run_app):
        def app(mpi):
            total = mpi.COMM_WORLD.allreduce([mpi.rank])  # list concat via +
            root_total = mpi.COMM_WORLD.reduce(mpi.rank + 1, op=lambda a, b: a * b)
            return (total, root_total)

        result = run_app(app, 4)
        for rank, (total, root_total) in enumerate(result.returns):
            assert total == [0, 1, 2, 3]
            assert root_total == (24 if rank == 0 else None)

    def test_scatter_requires_full_list(self, run_app):
        def app(mpi):
            items = ["only-one"] if mpi.rank == 0 else None
            mpi.COMM_WORLD.scatter(items, root=0)

        with pytest.raises(ActorFailure):
            run_app(app, 3)
