"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.smpi import SmpiConfig, smpirun
from repro.surf import cluster


@pytest.fixture
def small_cluster():
    """A fresh 8-node GigE cluster with a 10G backbone."""
    return cluster("test", 8)


@pytest.fixture
def crossbar_cluster():
    """A 8-node cluster without a shared backbone (ideal crossbar)."""
    return cluster("xbar", 8, backbone_bandwidth=None)


@pytest.fixture
def run_app():
    """Run an MPI app on a fresh cluster; returns the SmpiResult."""

    def runner(app, n_ranks=4, app_args=(), config=None, n_hosts=None, **kwargs):
        platform = cluster("run", n_hosts or n_ranks)
        return smpirun(
            app, n_ranks, platform, app_args=app_args,
            config=config or SmpiConfig(), **kwargs,
        )

    return runner
