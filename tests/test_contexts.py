"""Tests for the pluggable execution-context backends.

Covers backend selection (name / instance / REPRO_CTX / auto), the
coroutine backend's generator dialect, kill idempotency, context-leak
diagnostics, the switch counters, and cross-backend bit-identity of
simulated time.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.errors import ActorFailure, ConfigError, ContextError, DeadlockError
from repro.simix import (
    Actor,
    AutoBackend,
    CoroutineBackend,
    Scheduler,
    ThreadBackend,
    available_backends,
    greenlet_available,
    select_backend,
)
from repro.simix.actor import ActorKilled
from repro.smpi import smpirun
from repro.surf import Engine, cluster

needs_greenlet = pytest.mark.skipif(
    not greenlet_available(), reason="greenlet not importable"
)

#: every backend usable in this environment (greenlet is optional)
BACKENDS = ["coroutine", "thread"] + (
    ["greenlet"] if greenlet_available() else []
)


def make_scheduler(n=4, ctx=None):
    return Scheduler(Engine(cluster("ctx", n)), ctx=ctx)


# ---------------------------------------------------------------------------
# backend selection
# ---------------------------------------------------------------------------


class TestSelection:
    def test_available_backends(self):
        names = available_backends()
        assert {"auto", "coroutine", "greenlet", "thread"} <= set(names)

    def test_select_by_name(self):
        assert select_backend("thread").name == "thread"
        assert select_backend("coroutine").name == "coroutine"
        assert select_backend("auto").name == "auto"

    def test_select_instance_passthrough(self):
        backend = ThreadBackend()
        assert select_backend(backend) is backend

    def test_select_default_is_auto(self, monkeypatch):
        monkeypatch.delenv("REPRO_CTX", raising=False)
        assert select_backend(None).name == "auto"

    def test_env_var_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_CTX", "thread")
        assert select_backend(None).name == "thread"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError, match="unknown ctx backend"):
            select_backend("fibers")

    def test_greenlet_backend_unavailable_raises(self):
        if greenlet_available():
            assert select_backend("greenlet").name == "greenlet"
        else:
            with pytest.raises(ConfigError, match="greenlet"):
                select_backend("greenlet")

    def test_auto_picks_coroutine_for_generator_funcs(self):
        sched = make_scheduler(ctx="auto")

        def gen_app():
            yield from sched.current.co_yield_now()

        actor = sched.add_actor("g", "node-0", gen_app)
        assert actor.context_kind == "coroutine"

    def test_auto_picks_stack_backend_for_plain_funcs(self):
        sched = make_scheduler(ctx="auto")
        actor = sched.add_actor("p", "node-0", lambda: None)
        expected = "greenlet" if greenlet_available() else "thread"
        assert actor.context_kind == expected


# ---------------------------------------------------------------------------
# coroutine backend semantics
# ---------------------------------------------------------------------------


class TestCoroutineBackend:
    def test_generator_actor_runs_without_threads(self):
        sched = make_scheduler(ctx="coroutine")
        before = threading.active_count()

        def app():
            me = sched.current
            activity = sched.sleep_activity(1.0)
            yield from activity.co_wait(me)
            return "done"

        actor = sched.add_actor("a", "node-0", app)
        assert sched.run() == pytest.approx(1.0)
        assert actor.result == "done"
        assert threading.active_count() == before

    def test_plain_nonblocking_func_allowed(self):
        sched = make_scheduler(ctx="coroutine")
        actor = sched.add_actor("p", "node-0", lambda: 7)
        sched.run()
        assert actor.result == 7

    def test_plain_blocking_func_raises_context_error(self):
        sched = make_scheduler(ctx="coroutine")

        def app():
            me = sched.current
            sched.sleep_activity(1.0).wait(me)  # sync dialect: must fail

        sched.add_actor("bad", "node-0", app)
        with pytest.raises(ActorFailure) as err:
            sched.run()
        assert isinstance(err.value.__cause__, ContextError)
        assert "generator dialect" in str(err.value.__cause__)

    def test_finally_blocks_run_on_teardown_kill(self):
        sched = make_scheduler(ctx="coroutine")
        events = []

        def sleeper():
            me = sched.current
            try:
                yield from sched.sleep_activity(100.0).co_wait(me)
            finally:
                events.append("unwound")

        def failer():
            yield from sched.current.co_yield_now()
            raise RuntimeError("boom")

        sched.add_actor("s", "node-0", sleeper)
        sched.add_actor("f", "node-1", failer)
        with pytest.raises(ActorFailure):
            sched.run()
        assert events == ["unwound"]


# ---------------------------------------------------------------------------
# kill / teardown semantics across backends
# ---------------------------------------------------------------------------


class TestKillSemantics:
    @pytest.mark.parametrize("ctx", BACKENDS)
    def test_kill_is_idempotent(self, ctx):
        sched = make_scheduler(ctx=ctx)

        def app():
            me = sched.current
            yield from sched.sleep_activity(100.0).co_wait(me)

        actor = sched.add_actor("k", "node-0", app)
        # repeated kills before, during, and after unwind are no-ops
        actor.kill()
        actor.kill()
        sched._teardown()
        assert actor.finished
        actor.kill()  # after finish: still a no-op
        assert not actor.context_alive

    @pytest.mark.parametrize("ctx", BACKENDS)
    def test_kill_finished_actor_is_noop(self, ctx):
        sched = make_scheduler(ctx=ctx)
        actor = sched.add_actor("done", "node-0", lambda: 1 if ctx != "coroutine" else 1)
        sched.run()
        actor.kill()
        actor.resume()
        assert actor.result == 1 and not actor.context_alive

    def test_leaked_context_is_reported(self):
        """An actor swallowing ActorKilled survives teardown and is named."""
        import logging

        sched = make_scheduler(ctx="coroutine")

        def stubborn():
            me = sched.current
            while True:
                try:
                    yield from me.co_suspend()  # nothing ever wakes us
                except ActorKilled:
                    continue  # refuse to die

        sched.add_actor("immortal", "node-0", stubborn)
        sched.add_actor("quick", "node-1", lambda: None)
        records = []

        class Capture(logging.Handler):
            def emit(self, record):
                records.append(record.getMessage())

        handler = Capture(level=logging.ERROR)
        logger = logging.getLogger("repro.simix")
        logger.addHandler(handler)
        try:
            with pytest.raises(DeadlockError):
                sched.run()
        finally:
            logger.removeHandler(handler)
        assert any("immortal" in msg and "coroutine" in msg
                   for msg in records)


# ---------------------------------------------------------------------------
# switch counters
# ---------------------------------------------------------------------------


class TestCounters:
    def test_ctx_switches_counted(self):
        sched = make_scheduler(ctx="coroutine")

        def app():
            me = sched.current
            for _ in range(3):
                yield from sched.sleep_activity(1.0).co_wait(me)

        sched.add_actor("c", "node-0", app)
        sched.run()
        # 1 initial resume + 3 post-sleep resumes
        assert sched.engine.stats.ctx_switches >= 4

    def test_fast_resume_path_counted(self):
        """A sole runnable actor that yields is resumed without deque churn."""
        sched = make_scheduler(ctx="coroutine")

        def app():
            me = sched.current
            for _ in range(5):
                yield from me.co_yield_now()

        sched.add_actor("y", "node-0", app)
        sched.run()
        assert sched.engine.stats.ctx_fast_resumes >= 5


# ---------------------------------------------------------------------------
# cross-backend bit-identity at the SMPI level
# ---------------------------------------------------------------------------


def _ring_app(mpi, elems=256):
    """Generator-dialect ring exchange + allreduce; runs on every backend."""
    comm = mpi.COMM_WORLD
    rank, size = comm.rank, comm.size
    out = np.full(elems, float(rank))
    buf = np.zeros(elems)
    right, left = (rank + 1) % size, (rank - 1) % size
    yield from comm.co.Sendrecv(out, right, 1, buf, left, 1)
    yield from mpi.co.execute(1e6)
    total = np.zeros(1)
    yield from comm.co.Allreduce(np.array([buf.sum()]), total)
    t = yield from mpi.co.wtime()
    return (float(total[0]), t)


def _normalize(csv_text):
    """Renumber message ids (a process-global counter) to appearance order.

    Everything else — timestamps, endpoints, sizes — must match bit-for-bit
    between backends.
    """
    remap = {}
    out = []
    for line in csv_text.splitlines():
        fields = line.split(",")
        if fields and fields[0] == "comm":
            mid = fields[1]
            fields[1] = remap.setdefault(mid, str(len(remap)))
        out.append(",".join(fields))
    return "\n".join(out)


class TestBackendEquivalence:
    @pytest.mark.parametrize("ctx", BACKENDS)
    def test_ring_matches_thread_oracle(self, ctx):
        platform = cluster("eq", 4)
        oracle = smpirun(_ring_app, 4, cluster("eq", 4), ctx="thread")
        result = smpirun(_ring_app, 4, platform, ctx=ctx)
        assert result.simulated_time == oracle.simulated_time  # bit-identical
        assert result.returns == oracle.returns

    @pytest.mark.parametrize("ctx", BACKENDS)
    def test_trace_bit_identical(self, ctx):
        from repro.smpi import SmpiConfig

        config = SmpiConfig(tracing=True)
        oracle = smpirun(_ring_app, 4, cluster("eq", 4), config=config,
                         ctx="thread")
        result = smpirun(_ring_app, 4, cluster("eq", 4), config=config,
                         ctx=ctx)
        assert _normalize(result.trace.to_csv()) == _normalize(
            oracle.trace.to_csv()
        )
