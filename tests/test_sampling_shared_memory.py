"""Tests for the single-node scalability features: CPU sampling
(SMPI_SAMPLE_*), RAM folding (SMPI_SHARED_MALLOC) and memory accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ActorFailure, OutOfMemoryError
from repro.smpi import SmpiConfig, smpirun
from repro.smpi.memory import RANK_BASELINE, MemoryTracker
from repro.surf import cluster


def run(app, n=2, config=None, app_args=()):
    return smpirun(app, n, cluster("mm", max(n, 2)), config=config,
                   app_args=app_args)


class TestSampling:
    def test_sample_local_executes_first_n(self, run_app):
        def app(mpi):
            executed = 0
            for _ in range(10):
                for _ in mpi.sample_local("site", n=3):
                    executed += 1
            return executed

        result = run_app(app, 2)
        assert result.returns == [3, 3]  # per rank

    def test_sample_local_still_advances_clock_when_bypassed(self, run_app):
        def app(mpi):
            import time

            for _ in range(5):
                for _ in mpi.sample_local("busy", n=1):
                    time.sleep(0.01)
            return mpi.wtime()

        result = run_app(app, 1)
        # 1 executed (>=10 ms) + 4 replayed averages (>=10 ms each); the
        # upper bound is loose because time.sleep overshoots under load
        assert 0.045 <= result.returns[0] <= 0.5

    def test_sample_global_shares_budget_across_ranks(self, run_app):
        def app(mpi):
            executed = 0
            for _ in range(4):
                for _ in mpi.sample_global("gsite", n=6):
                    executed += 1
                mpi.COMM_WORLD.Barrier()
            return executed

        result = run_app(app, 4)
        assert sum(result.returns) == 6  # 6 executions total, not per rank

    def test_sample_delay_never_executes(self, run_app):
        def app(mpi):
            mpi.sample_delay(flops=2e9)  # 2 s on the 1 Gf test hosts
            return mpi.wtime()

        result = run_app(app, 1)
        assert result.returns[0] == pytest.approx(2.0)

    def test_sample_auto_stops_on_precision(self, run_app):
        def app(mpi):
            executed = 0
            for _ in range(50):
                for _ in mpi.sample_auto("auto-site", precision=0.5,
                                         max_samples=50):
                    executed += 1
                    mpi.sleep(0)  # deterministic, so precision hits fast
            return executed

        result = run_app(app, 1)
        assert result.returns[0] < 50  # froze before max

    def test_speed_factor_scales_replay(self):
        def app(mpi):
            import time

            for _ in range(3):
                for _ in mpi.sample_local("scaled", n=1):
                    time.sleep(0.01)
            return mpi.wtime()

        fast = run(app, 1, config=SmpiConfig(speed_factor=1.0))
        slow = run(app, 1, config=SmpiConfig(speed_factor=4.0))
        assert slow.returns[0] > 2.0 * fast.returns[0]

    def test_sampler_stats_exposed(self, run_app):
        def app(mpi):
            for _ in range(5):
                for _ in mpi.sample_local("stat-site", n=2):
                    pass

        result = run_app(app, 2)
        stats = result.sampler_stats["stat-site"]
        assert stats["kind"] == "local"
        assert stats["samples"] == 4  # 2 per rank

    def test_sample_local_rejects_n_zero(self, run_app):
        def app(mpi):
            for _ in mpi.sample_local("bad", n=0):
                pass

        with pytest.raises(ActorFailure):
            run_app(app, 1)


class TestSharedMalloc:
    def test_all_ranks_get_same_array(self, run_app):
        def app(mpi):
            arr = mpi.shared_malloc("block", 16)
            if mpi.rank == 0:
                arr[0] = 42.0
            mpi.COMM_WORLD.Barrier()
            value = arr[0]  # every rank sees rank 0's write: folded!
            mpi.shared_free("block")
            return value

        result = run_app(app, 4)
        assert result.returns == [42.0] * 4

    def test_folding_counts_once(self, run_app):
        def app(mpi):
            mpi.shared_malloc("big", 1000)
            mpi.COMM_WORLD.Barrier()
            report = None
            if mpi.rank == 0:
                report = mpi._world.memory.report()
            mpi.shared_free("big")
            return None if report is None else report.shared_peak

        result = run_app(app, 4)
        assert result.returns[0] == 8000  # one array, not four

    def test_unfolded_counts_per_rank(self, run_app):
        def app(mpi):
            arr = mpi.malloc(1000)
            mpi.COMM_WORLD.Barrier()
            peak = mpi._world.memory.report().total_peak if mpi.rank == 0 else None
            mpi.free(arr)
            return peak

        result = run_app(app, 4)
        expected = 4 * 8000 + 4 * RANK_BASELINE
        assert result.returns[0] == expected

    def test_shape_mismatch_rejected(self, run_app):
        def app(mpi):
            mpi.shared_malloc("blk", 10 + mpi.rank)  # different shapes!

        with pytest.raises(ActorFailure):
            run_app(app, 2)

    def test_free_unknown_key_rejected(self, run_app):
        def app(mpi):
            mpi.shared_free("never-allocated")

        with pytest.raises(ActorFailure):
            run_app(app, 1)

    def test_refcount_frees_at_zero(self, run_app):
        def app(mpi):
            mpi.shared_malloc("rc", 100)
            mpi.COMM_WORLD.Barrier()
            mpi.shared_free("rc")
            mpi.COMM_WORLD.Barrier()
            if mpi.rank == 0:
                return mpi._world.heap.shared_keys
            return None

        result = run_app(app, 3)
        assert result.returns[0] == []


class TestMemoryTracker:
    def test_peaks_track_high_water_mark(self):
        tracker = MemoryTracker(2)
        tracker.allocate(0, 1000)
        tracker.allocate(0, 500)
        tracker.free(0, 1000)
        tracker.allocate(1, 200)
        report = tracker.report()
        assert report.per_rank_peak[0] == RANK_BASELINE + 1500
        assert report.per_rank_peak[1] == RANK_BASELINE + 200

    def test_enforcement_raises_oom(self):
        tracker = MemoryTracker(1, limit=RANK_BASELINE + 1000, enforce=True)
        tracker.allocate(0, 900)
        with pytest.raises(OutOfMemoryError):
            tracker.allocate(0, 200)

    def test_no_enforcement_by_default(self):
        tracker = MemoryTracker(1, limit=10)
        tracker.allocate(0, 10**9)  # fine: tracking only

    def test_shared_pool_in_total(self):
        tracker = MemoryTracker(2)
        tracker.allocate_shared(5000)
        assert tracker.report().shared_peak == 5000
        assert tracker.report().total_peak == 2 * RANK_BASELINE + 5000
        tracker.free_shared(5000)
        assert tracker.report().shared_peak == 5000  # peak is sticky

    def test_double_free_clamps(self):
        tracker = MemoryTracker(1)
        tracker.allocate(0, 100)
        tracker.free(0, 100)
        tracker.free(0, 100)  # user bug: ignored, no negative usage
        assert tracker.total_current >= 0

    def test_oom_in_simulation(self):
        config = SmpiConfig(enforce_memory_limit=True,
                            memory_limit=RANK_BASELINE * 2 + 4000)

        def app(mpi):
            mpi.malloc(1000)  # 8000 bytes: over the budget together

        with pytest.raises(ActorFailure) as info:
            run(app, 2, config=config)
        assert isinstance(info.value.original, OutOfMemoryError)
