"""Tests for the NAS DT and EP reproductions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.nas import (
    DT_CLASSES,
    bh_graph,
    dt_app,
    dt_graph,
    dt_reference_checksum,
    ep_app,
    ep_chunk_counts,
    ep_reference_counts,
    sh_graph,
    wh_graph,
)
from repro.smpi import smpirun
from repro.surf import cluster


class TestDtGraphs:
    @pytest.mark.parametrize(
        "cls,bhwh,sh",
        [("A", 21, 80), ("B", 43, 192), ("C", 85, 448)],
    )
    def test_paper_process_counts(self, cls, bhwh, sh):
        """The exact process counts of paper section 7.1.4."""
        assert DT_CLASSES[cls].bhwh_nodes == bhwh
        assert DT_CLASSES[cls].sh_nodes == sh
        assert bh_graph(cls).n_ranks == bhwh
        assert wh_graph(cls).n_ranks == bhwh
        assert sh_graph(cls).n_ranks == sh

    def test_bh_has_single_sink_many_sources(self):
        graph = bh_graph("A")
        assert len(graph.sinks()) == 1
        assert len(graph.sources()) == 16

    def test_wh_mirrors_bh(self):
        bh = bh_graph("A")
        wh = wh_graph("A")
        assert len(wh.sources()) == len(bh.sinks())
        assert len(wh.sinks()) == len(bh.sources())
        assert sorted(e[::-1] for e in bh.edges()) == sorted(wh.edges())

    def test_bh_volumes_grow_toward_sink(self):
        graph = bh_graph("A")
        sink = graph.sinks()[0]
        base = graph.cls.feature_elems
        assert graph.in_elems(sink) == 16 * base  # aggregate of all sources

    def test_sh_preserves_volume_per_layer(self):
        graph = sh_graph("A")
        base = graph.cls.feature_elems
        for node in graph.nodes:
            assert graph.in_elems(node) == base
            if not node.is_sink:
                assert node.out_elems == base // 2

    def test_sh_every_interior_node_has_two_in_two_out(self):
        graph = sh_graph("W")
        for node in graph.nodes:
            if not node.is_source:
                assert len(node.in_edges) == 2
            if not node.is_sink:
                assert len(node.out_edges) == 2

    def test_unknown_scheme_raises(self):
        with pytest.raises(ConfigError):
            dt_graph("XX", "A")

    @given(st.sampled_from(["S", "W", "A"]), st.sampled_from(["BH", "WH", "SH"]))
    @settings(max_examples=20, deadline=None)
    def test_graph_invariants(self, cls, scheme):
        """Edges are layered forward, volumes positive, graph acyclic."""
        graph = dt_graph(scheme, cls)
        for node in graph.nodes:
            assert node.out_elems > 0
            for dst in node.out_edges:
                assert graph.nodes[dst].layer == node.layer + 1
            for src in node.in_edges:
                assert graph.nodes[src].layer == node.layer - 1
        # every non-sink's traffic is absorbed: each edge consistent both ways
        for src, dst in graph.edges():
            assert src in graph.nodes[dst].in_edges


class TestDtExecution:
    @pytest.mark.parametrize("scheme", ["BH", "WH", "SH"])
    def test_online_checksums_match_reference(self, scheme):
        graph = dt_graph(scheme, "S")
        platform = cluster("dt", graph.n_ranks)
        result = smpirun(dt_app, graph.n_ranks, platform, app_args=(graph,))
        sinks = sorted(x for x in result.returns if x is not None)
        reference = sorted(dt_reference_checksum(graph))
        assert np.allclose(sinks, reference)

    def test_bh_slower_than_wh(self):
        """The headline trend of Fig. 15."""
        platform = cluster("dtw", 21)
        times = {}
        for scheme in ("BH", "WH"):
            graph = dt_graph(scheme, "A")
            result = smpirun(dt_app, graph.n_ranks, platform, app_args=(graph,))
            times[scheme] = result.simulated_time
        assert times["BH"] > 1.3 * times["WH"]

    def test_folded_run_uses_less_memory(self):
        graph = dt_graph("BH", "W")
        platform = cluster("dtf", graph.n_ranks)
        unfolded = smpirun(dt_app, graph.n_ranks, platform,
                           app_args=(graph, 0, False))
        folded = smpirun(dt_app, graph.n_ranks, platform,
                         app_args=(graph, 0, True))
        assert folded.memory.total_peak < unfolded.memory.total_peak

    def test_different_seeds_change_checksums(self):
        graph = dt_graph("BH", "S")
        a = dt_reference_checksum(graph, seed=0)
        b = dt_reference_checksum(graph, seed=1)
        assert a != b


class TestEp:
    def test_counts_match_reference(self):
        n, chunks, pairs = 2, 8, 64
        platform = cluster("ep", n)
        result = smpirun(ep_app, n, platform,
                         app_args=(chunks, pairs, 1.0))
        reference = ep_reference_counts(n, chunks, pairs)
        for rank_counts in result.returns:
            np.testing.assert_array_equal(rank_counts, reference)

    def test_chunk_counts_deterministic(self):
        a = ep_chunk_counts(0, 0, 100, seed=0)
        b = ep_chunk_counts(0, 0, 100, seed=0)
        np.testing.assert_array_equal(a, b)
        c = ep_chunk_counts(1, 0, 100, seed=0)
        assert not np.array_equal(a, c)

    def test_counts_total_is_acceptance_count(self):
        counts = ep_chunk_counts(3, 5, 1000, seed=2)
        assert 0 < counts.sum() <= 1000
        assert (counts >= 0).all()

    def test_sampling_ratio_skips_compute_but_not_result_shape(self):
        n, chunks, pairs = 2, 16, 32
        platform = cluster("eps", n)
        result = smpirun(ep_app, n, platform,
                         app_args=(chunks, pairs, 0.25))
        sampled = result.returns[0]
        full = ep_reference_counts(n, chunks, pairs)
        # approximate results: only ~25 % of the contributions are present
        assert sampled.sum() < full.sum()
        assert sampled.sum() > 0

    def test_sampling_reduces_executed_chunks(self):
        n, chunks, pairs = 1, 40, 16
        platform = cluster("epr", 2)
        result = smpirun(ep_app, n, platform, app_args=(chunks, pairs, 0.1))
        stats = result.sampler_stats["ep-chunk"]
        assert stats["samples"] == 4  # 10 % of 40
