"""SMPI fault semantics over dynamic platforms (docs/faults.md).

Covers the configurable reactions to resource failures: fail-fast MPI
errors (the default), transparent retry with exponential backoff,
transfer timeouts, and the ``kill-rank`` host-down policy with
MPI_ERR_PROC_FAILED at surviving peers — plus the observability hooks
(failed comms in Paje/CSV traces) and the lazy-vs-eager regression for
mid-flight kills.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ActorFailure, ConfigError, DeadlockError, MpiError
from repro.smpi import SmpiConfig, smpirun
from repro.smpi.constants import ERR_OTHER, ERR_PROC_FAILED
from repro.surf import Engine, cluster
from repro.surf.action import ActionState
from repro.trace import Tracer, export_paje, parse_paje


def _flaky_window(platform, engine, link_name, down_at, up_at):
    """Script a transient outage of one link on ``engine``."""
    link = platform.link(link_name)
    engine.at(down_at, lambda: engine.fail_resource(link))
    engine.at(up_at, lambda: engine.restore_resource(link))


class TestRetry:
    def _pingpong(self, nbytes=1_000_000):
        def app(mpi):
            comm = mpi.COMM_WORLD
            if mpi.rank == 0:
                comm.Send(np.zeros(nbytes, dtype=np.uint8), 1, 0)
                return "sent"
            comm.Recv(np.zeros(nbytes, dtype=np.uint8), 0, 0)
            return "received"

        return app

    def test_retry_rides_out_a_transient_outage(self):
        platform = cluster("rt1", 2)
        engine = Engine(platform)
        _flaky_window(platform, engine, "rt1-backbone", 1e-4, 2e-3)
        result = smpirun(self._pingpong(), 2, platform, engine=engine,
                         config=SmpiConfig(comm_retries=3))
        assert result.returns == ["sent", "received"]
        # the successful attempt started after the link came back
        assert result.simulated_time > 2e-3

    def test_no_retries_fails_fast(self):
        platform = cluster("rt2", 2)
        engine = Engine(platform)
        _flaky_window(platform, engine, "rt2-backbone", 1e-4, 2e-3)
        with pytest.raises(ActorFailure) as info:
            smpirun(self._pingpong(), 2, platform, engine=engine)
        assert isinstance(info.value.original, MpiError)
        assert info.value.original.code == ERR_OTHER
        assert "network failure" in str(info.value.original)

    def test_retries_exhaust_on_permanent_failure(self):
        platform = cluster("rt3", 2)
        engine = Engine(platform)
        link = platform.link("rt3-backbone")
        engine.at(1e-4, lambda: engine.fail_resource(link))  # never restored
        with pytest.raises(ActorFailure) as info:
            smpirun(self._pingpong(), 2, platform, engine=engine,
                    config=SmpiConfig(comm_retries=2, retry_backoff=1e-4))
        assert "network failure" in str(info.value.original)

    def test_backoff_doubles_between_attempts(self):
        # with a permanent failure the clock advances by the sum of the
        # backoff delays, so a 4x base delay separates the two runs
        clocks = {}
        for backoff in (1e-3, 4e-3):
            platform = cluster("rt4", 2)
            engine = Engine(platform)
            link = platform.link("rt4-backbone")
            engine.at(1e-4, lambda e=engine, l=link: e.fail_resource(l))
            with pytest.raises(ActorFailure):
                smpirun(self._pingpong(), 2, platform, engine=engine,
                        config=SmpiConfig(comm_retries=2,
                                          retry_backoff=backoff))
            clocks[backoff] = engine.now
        # delays: b + 2b = 3b, so the gap between runs is 3*(4e-3 - 1e-3)
        assert clocks[4e-3] - clocks[1e-3] == pytest.approx(9e-3, rel=1e-3)


class TestTimeout:
    def test_stalled_transfer_times_out(self):
        platform = cluster("to1", 2)
        engine = Engine(platform)
        link = platform.link("to1-backbone")
        # stall (capacity 0) rather than fail: only the watchdog can end it
        engine.at(1e-4, lambda: engine.set_availability(link, 0.0))

        def app(mpi):
            comm = mpi.COMM_WORLD
            if mpi.rank == 0:
                comm.Send(np.zeros(1_000_000, dtype=np.uint8), 1, 0)
            else:
                comm.Recv(np.zeros(1_000_000, dtype=np.uint8), 0, 0)

        with pytest.raises(ActorFailure) as info:
            smpirun(app, 2, platform, engine=engine,
                    config=SmpiConfig(comm_timeout=0.05))
        assert "timed out" in str(info.value.original)
        assert engine.now == pytest.approx(0.05, rel=1e-6)

    def test_timeout_plus_retry_recovers_after_restore(self):
        platform = cluster("to2", 2)
        engine = Engine(platform)
        link = platform.link("to2-backbone")
        engine.at(1e-4, lambda: engine.set_availability(link, 0.0))
        engine.at(0.02, lambda: engine.set_availability(link, 1.0))

        def app(mpi):
            comm = mpi.COMM_WORLD
            if mpi.rank == 0:
                comm.Send(np.zeros(1_000_000, dtype=np.uint8), 1, 0)
                return "sent"
            comm.Recv(np.zeros(1_000_000, dtype=np.uint8), 0, 0)
            return "received"

        result = smpirun(app, 2, platform, engine=engine,
                         config=SmpiConfig(comm_timeout=0.01, comm_retries=3,
                                           retry_backoff=5e-3))
        assert result.returns == ["sent", "received"]
        assert result.simulated_time > 0.02

    def test_stale_watchdog_is_disarmed_on_completion(self):
        """A fast message must not leave its timeout watchdog pending:
        the stale ``engine.at`` sleep used to keep the simulation alive
        (and the clock running) until the timeout deadline."""
        platform = cluster("to3", 2)
        engine = Engine(platform)

        def app(mpi):
            comm = mpi.COMM_WORLD
            if mpi.rank == 0:
                comm.Send(np.zeros(1000, dtype=np.uint8), 1, 0)
            else:
                comm.Recv(np.zeros(1000, dtype=np.uint8), 0, 0)
            return mpi.wtime()

        result = smpirun(app, 2, platform, engine=engine,
                         config=SmpiConfig(comm_timeout=10.0))
        # well under the 10 s watchdog deadline
        assert result.simulated_time < 1.0
        # harvesting the cancelled watchdog must not advance the clock to
        # its 10 s deadline (the old behavior) nor fire its callback
        engine.run()
        assert engine.now < 1.0
        assert not engine.pending


class TestHostDown:
    def test_default_policy_fails_the_ranks_operations(self):
        platform = cluster("hd1", 2)
        engine = Engine(platform)
        engine.at(1e-3,
                  lambda: engine.fail_resource(platform.host("node-1")))

        def app(mpi):
            # rank 1 is mid-compute on node-1 when the host dies
            mpi.execute(1e12 if mpi.rank == 1 else 1e6)
            return "done"

        with pytest.raises(ActorFailure) as info:
            smpirun(app, 2, platform, engine=engine)
        assert info.value.actor_name == "rank-1"

    def test_kill_rank_send_to_dead_peer_raises_proc_failed(self):
        platform = cluster("hd2", 2)
        engine = Engine(platform)
        engine.at(1e-3,
                  lambda: engine.fail_resource(platform.host("node-1")))

        def app(mpi):
            comm = mpi.COMM_WORLD
            if mpi.rank == 0:
                mpi.execute(1e7)  # outlive the failure at t=1e-3
                try:
                    comm.Send(np.zeros(100, dtype=np.uint8), 1, 0)
                except MpiError as exc:
                    return exc.code
                return "sent?"
            mpi.execute(1e12)  # rank 1 dies mid-compute
            return "unreachable"

        result = smpirun(app, 2, platform, engine=engine,
                         config=SmpiConfig(on_host_down="kill-rank"))
        assert result.returns[0] == ERR_PROC_FAILED
        assert result.returns[1] is None  # killed, not returned

    def test_kill_rank_fails_pre_posted_recv_from_dead_peer(self):
        platform = cluster("hd3", 2)
        engine = Engine(platform)
        engine.at(1e-3,
                  lambda: engine.fail_resource(platform.host("node-1")))

        def app(mpi):
            from repro.smpi import request as rq

            comm = mpi.COMM_WORLD
            if mpi.rank == 0:
                req = comm.Irecv(np.zeros(100, dtype=np.uint8), 1, 0)
                try:
                    rq.wait(req)
                except MpiError as exc:
                    return exc.code
                return "received?"
            mpi.execute(1e12)
            return "unreachable"

        result = smpirun(app, 2, platform, engine=engine,
                         config=SmpiConfig(on_host_down="kill-rank"))
        assert result.returns[0] == ERR_PROC_FAILED

    def test_kill_rank_other_ranks_finish_normally(self):
        platform = cluster("hd4", 4)
        engine = Engine(platform)
        engine.at(1e-3,
                  lambda: engine.fail_resource(platform.host("node-3")))

        def app(mpi):
            comm = mpi.COMM_WORLD
            if mpi.rank == 3:
                mpi.execute(1e12)
                return "unreachable"
            mpi.execute(1e7)
            # ranks 0-2 exchange among themselves, avoiding the dead rank
            peer = (mpi.rank + 1) % 3
            src = (mpi.rank - 1) % 3
            from repro.smpi import request as rq

            reqs = [comm.Irecv(np.zeros(100, dtype=np.uint8), src, 0),
                    comm.Isend(np.zeros(100, dtype=np.uint8), peer, 0)]
            rq.waitall(reqs)
            return "ok"

        result = smpirun(app, 4, platform, engine=engine,
                         config=SmpiConfig(on_host_down="kill-rank"))
        assert result.returns[:3] == ["ok", "ok", "ok"]
        assert result.returns[3] is None


class TestDeadlockReporting:
    def test_wait_on_never_sent_message_names_the_call(self):
        platform = cluster("dl1", 2)

        def app(mpi):
            comm = mpi.COMM_WORLD
            if mpi.rank == 0:
                comm.Recv(np.zeros(100, dtype=np.uint8), 1, 0)
            return "done"

        with pytest.raises(DeadlockError) as info:
            smpirun(app, 2, platform)
        message = str(info.value)
        assert "rank-0" in message
        assert "in MPI_Wait: unmatched recv" in message

    def test_waitall_deadlock_describes_pending_requests(self):
        platform = cluster("dl2", 2)

        def app(mpi):
            from repro.smpi import request as rq

            comm = mpi.COMM_WORLD
            if mpi.rank == 0:
                reqs = [comm.Irecv(np.zeros(10, dtype=np.uint8), 1, t)
                        for t in range(2)]
                rq.waitall(reqs)
            return "done"

        with pytest.raises(DeadlockError) as info:
            smpirun(app, 2, platform)
        assert "in MPI_Waitall" in str(info.value)


class TestMidFlightKillRegression:
    """fail_resource and cancel must look identical lazy vs eager."""

    @pytest.mark.parametrize("how", ["fail", "cancel"])
    def test_kill_paths_identical_between_event_loops(self, how):
        outcomes = {}
        for eager in (False, True):
            platform = cluster("mk", 3, backbone_bandwidth=None)
            engine = Engine(platform, eager_updates=eager)
            victim = engine.communicate("node-0", "node-1", 10_000_000)
            survivor = engine.communicate("node-1", "node-2", 2_000_000)
            if how == "fail":
                engine.at(1e-3, lambda: engine.fail_resource(
                    platform.link("mk-l0")))
            else:
                engine.at(1e-3, lambda: engine.cancel(victim))
            final = engine.run()
            outcomes[eager] = (
                final,
                (victim.state.value, victim.finish_time, victim.remaining),
                (survivor.state.value, survivor.finish_time,
                 survivor.remaining),
            )
        assert outcomes[False] == outcomes[True]
        assert outcomes[False][1][0] == ActionState.FAILED.value
        assert outcomes[False][2][0] == ActionState.DONE.value


class TestFaultTracing:
    def _traced_failure(self):
        """Run an app whose transfer dies mid-flight, tracing enabled."""
        platform = cluster("ft", 2)
        engine = Engine(platform)
        link = platform.link("ft-backbone")
        engine.at(2e-3, lambda: engine.fail_resource(link))
        engine.at(5e-3, lambda: engine.restore_resource(link))

        def app(mpi):
            comm = mpi.COMM_WORLD
            try:
                if mpi.rank == 0:
                    comm.Send(np.zeros(10_000_000, dtype=np.uint8), 1, 0)
                else:
                    comm.Recv(np.zeros(10_000_000, dtype=np.uint8), 0, 0)
            except MpiError:
                mpi.execute(1e7)  # linger past the restore at t=5e-3
                return "lost"
            return "ok"

        result = smpirun(app, 2, platform, engine=engine,
                         config=SmpiConfig(tracing=True))
        assert result.returns == ["lost", "lost"]
        return result.trace

    def test_failed_comm_is_a_distinct_paje_state(self):
        trace = self._traced_failure()
        assert any(r.failed for r in trace.comms)
        text = export_paje(trace, n_ranks=2)
        assert '"failed"' in text  # the entity value is declared...
        loaded, n_ranks = parse_paje(text)
        assert n_ranks == 2
        assert any(r.failed for r in loaded.comms)  # ...and round-trips

    def test_resource_events_export_to_paje(self):
        trace = self._traced_failure()
        events = [(e.name, e.event) for e in trace.resource_events]
        assert ("ft-backbone", "fail") in events
        assert ("ft-backbone", "restore") in events
        loaded, _ = parse_paje(export_paje(trace, n_ranks=2))
        assert ([(e.name, e.kind, e.event, e.t) for e in trace.resource_events]
                == [(e.name, e.kind, e.event, e.t)
                    for e in loaded.resource_events])

    def test_csv_round_trip_is_lossless(self):
        trace = self._traced_failure()
        loaded = Tracer.from_csv(trace.to_csv())
        assert loaded.comms == trace.comms
        assert loaded.computes == trace.computes
        assert loaded.resource_events == trace.resource_events
        if trace.timeline is not None:
            assert loaded.timeline.capacity_series \
                == trace.timeline.capacity_series


class TestConfigValidation:
    @pytest.mark.parametrize("options", [
        {"comm_retries": -1},
        {"retry_backoff": -0.5},
        {"comm_timeout": 0.0},
        {"comm_timeout": -1.0},
        {"on_host_down": "panic"},
    ])
    def test_bad_fault_options_are_rejected(self, options):
        with pytest.raises(ConfigError):
            SmpiConfig(**options)


# ---------------------------------------------------------------------------
# fault semantics are backend-independent
# ---------------------------------------------------------------------------


def _context_backends():
    from repro.simix import greenlet_available

    return ["coroutine", "thread"] + (
        ["greenlet"] if greenlet_available() else []
    )


class TestFaultsAcrossBackends:
    """The fault machinery behaves identically on every context backend.

    Each scenario is a generator-dialect twin of a case above, run once
    per backend; simulated clocks and per-rank outcomes must match the
    thread oracle exactly (``==``, not ``approx``).
    """

    def _run_everywhere(self, make_setup, n_ranks, config):
        outcomes = {}
        for ctx in _context_backends():
            app, platform, engine = make_setup()
            result = smpirun(app, n_ranks, platform, engine=engine,
                             config=config, ctx=ctx)
            outcomes[ctx] = (result.simulated_time, tuple(result.returns))
        oracle = outcomes["thread"]
        assert all(o == oracle for o in outcomes.values()), outcomes
        return oracle

    def test_retry_rides_out_outage_on_all_backends(self):
        def make_setup():
            def app(mpi):
                comm = mpi.COMM_WORLD
                if mpi.rank == 0:
                    yield from comm.co.Send(
                        np.zeros(1_000_000, dtype=np.uint8), 1, 0)
                    return "sent"
                yield from comm.co.Recv(
                    np.zeros(1_000_000, dtype=np.uint8), 0, 0)
                return "received"

            platform = cluster("xrt", 2)
            engine = Engine(platform)
            _flaky_window(platform, engine, "xrt-backbone", 1e-4, 2e-3)
            return app, platform, engine

        clock, returns = self._run_everywhere(
            make_setup, 2, SmpiConfig(comm_retries=3))
        assert returns == ("sent", "received")
        assert clock > 2e-3

    def test_timeout_fails_identically_on_all_backends(self):
        def make_setup():
            def app(mpi):
                comm = mpi.COMM_WORLD
                try:
                    if mpi.rank == 0:
                        yield from comm.co.Send(
                            np.zeros(1_000_000, dtype=np.uint8), 1, 0)
                    else:
                        yield from comm.co.Recv(
                            np.zeros(1_000_000, dtype=np.uint8), 0, 0)
                except MpiError as exc:
                    return ("timeout", "timed out" in str(exc))
                return "done?"

            platform = cluster("xto", 2)
            engine = Engine(platform)
            link = platform.link("xto-backbone")
            engine.at(1e-4, lambda: engine.set_availability(link, 0.0))
            return app, platform, engine

        clock, returns = self._run_everywhere(
            make_setup, 2, SmpiConfig(comm_timeout=0.05))
        assert set(returns) == {("timeout", True)}
        assert clock == pytest.approx(0.05, rel=1e-6)

    def test_kill_rank_on_all_backends(self):
        def make_setup():
            def app(mpi):
                comm = mpi.COMM_WORLD
                if mpi.rank == 0:
                    yield from mpi.co.execute(1e7)  # outlive the failure
                    try:
                        yield from comm.co.Send(
                            np.zeros(100, dtype=np.uint8), 1, 0)
                    except MpiError as exc:
                        return exc.code
                    return "sent?"
                yield from mpi.co.execute(1e12)  # rank 1 dies mid-compute
                return "unreachable"

            platform = cluster("xhd", 2)
            engine = Engine(platform)
            engine.at(1e-3,
                      lambda: engine.fail_resource(platform.host("node-1")))
            return app, platform, engine

        _, returns = self._run_everywhere(
            make_setup, 2, SmpiConfig(on_host_down="kill-rank"))
        assert returns == (ERR_PROC_FAILED, None)

    @pytest.mark.parametrize("ctx", _context_backends())
    def test_deadlock_report_names_the_waiter(self, ctx):
        platform = cluster(f"xdl-{ctx}", 2)

        def app(mpi):
            comm = mpi.COMM_WORLD
            if mpi.rank == 0:
                yield from comm.co.Recv(np.zeros(8, dtype=np.uint8), 1, 7)
            # rank 1 never sends: rank 0 deadlocks

        with pytest.raises(DeadlockError) as info:
            smpirun(app, 2, platform, ctx=ctx)
        assert "rank-0" in str(info.value)
