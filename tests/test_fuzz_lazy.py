"""Property-based equivalence of the lazy-heap and eager event loops.

The lazy engine (completion-date heap, actions re-anchored only on rate
change) is a pure optimisation: for *any* workload it must produce the
same simulated clocks, the same completion order, and the same final
states as the historical eager engine that scans every pending action at
every event.  These tests drive randomized workloads — mixed transfers,
computes, sleeps, cancellations and resource failures — through both and
assert bit-identical results (``==``, not ``approx``).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.smpi import smpirun
from repro.surf import Engine, cluster

_FUZZ = settings(max_examples=20, deadline=None)

N_HOSTS = 6

# one randomized workload item: (kind, a, b, amount)
work_item = st.tuples(
    st.sampled_from(["comm", "exec", "sleep", "cancel", "fail_link"]),
    st.integers(0, N_HOSTS - 1),
    st.integers(0, N_HOSTS - 1),
    st.integers(1, 5_000_000),
)


def _drive(engine, platform, items):
    """Run one scripted workload; return a full observable transcript."""
    actions = []
    completion_order = []

    def observe(action):
        completion_order.append((action.name, engine.now))

    for step_no, (kind, a, b, amount) in enumerate(items):
        if kind == "comm" and a != b:
            action = engine.communicate(f"node-{a}", f"node-{b}", amount,
                                        name=f"comm-{step_no}")
        elif kind == "exec":
            action = engine.execute(f"node-{a}", amount * 100,
                                    name=f"exec-{step_no}")
        elif kind == "sleep":
            action = engine.sleep(amount * 1e-9, name=f"sleep-{step_no}")
        elif kind == "cancel" and actions:
            engine.cancel(actions[a % len(actions)])
            engine.advance(amount * 1e-7)
            continue
        elif kind == "fail_link":
            engine.fail_resource(platform.links[a % len(platform.links)])
            engine.advance(amount * 1e-7)
            continue
        else:
            continue
        action.observer = observe
        actions.append(action)
        # stagger arrivals so shares interleave with running flows
        if step_no % 2:
            engine.advance(amount * 1e-7)
    final = engine.run()
    return {
        "final_clock": final,
        "order": completion_order,
        "states": [(a.name, a.state.value, a.finish_time, a.remaining)
                   for a in actions],
    }


@given(st.lists(work_item, min_size=1, max_size=20), st.integers(0, 3))
@_FUZZ
def test_lazy_and_eager_engines_are_bit_identical(items, topology):
    """Any workload mix yields the same clocks, orders, and rates."""
    results = {}
    for eager in (False, True):
        platform = cluster("fzl", N_HOSTS,
                           backbone_bandwidth=None if topology % 2 else "1.25GBps",
                           split_duplex=topology >= 2)
        engine = Engine(platform, eager_updates=eager)
        results[eager] = _drive(engine, platform, items)
    assert results[False] == results[True]


@given(st.lists(work_item, min_size=1, max_size=20), st.integers(0, 3))
@_FUZZ
def test_full_reshare_is_still_invisible_under_lazy_updates(items, topology):
    """The two solver paths stay equivalent now that both feed the heap."""
    results = {}
    for full in (False, True):
        platform = cluster("fzf", N_HOSTS,
                           backbone_bandwidth=None if topology % 2 else "1.25GBps",
                           split_duplex=topology >= 2)
        engine = Engine(platform, full_reshare=full)
        results[full] = _drive(engine, platform, items)
    assert results[False] == results[True]


@given(st.lists(work_item, min_size=1, max_size=16), st.integers(0, 3))
@settings(max_examples=12, deadline=None)
def test_sharing_exact_is_bit_identical_across_engine_grid(items, topology):
    """The vectorised exact solver is a pure speedup: all four engine
    combinations (lazy/eager event loop × incremental/full share path)
    produce bit-identical transcripts under ``sharing="exact"``, pinning
    the flattened-array solver to the historical per-object one (the full
    path rebuilds a fresh ``MaxMinSystem`` per share, i.e. the pre-existing
    batch arithmetic)."""
    results = {}
    for eager in (False, True):
        for full in (False, True):
            platform = cluster("fzg", N_HOSTS,
                               backbone_bandwidth=None if topology % 2 else "1.25GBps",
                               split_duplex=topology >= 2)
            engine = Engine(platform, eager_updates=eager, full_reshare=full,
                            sharing="exact")
            results[(eager, full)] = _drive(engine, platform, items)
    oracle = results[(False, False)]
    assert all(r == oracle for r in results.values())


@given(st.lists(work_item, min_size=1, max_size=16), st.integers(0, 3))
@settings(max_examples=12, deadline=None)
def test_approx_sharing_sanity(items, topology):
    """Approx sharing stays deterministic and physically sane: identical
    transcripts under the lazy and eager event loops, completion times
    monotone along the completion order, and every share conserving
    capacity on each shared solver constraint (within tolerance)."""
    conservation_failures = []

    def check_conservation(engine):
        solver = engine._solver
        for record in solver._cons.values():
            if not record.shared:
                continue
            used = 0.0
            for fkey in record.flows:
                try:
                    rate = solver.rate(fkey)
                except KeyError:  # enrolled but not yet solved
                    continue
                used += rate * solver._flows[fkey].weight
            if used > record.capacity * (1 + 1e-9) + 1e-9:
                conservation_failures.append((record.name, used, record.capacity))

    results = {}
    for eager in (False, True):
        platform = cluster("fza", N_HOSTS,
                           backbone_bandwidth=None if topology % 2 else "1.25GBps",
                           split_duplex=topology >= 2)
        engine = Engine(platform, eager_updates=eager, sharing="approx")
        original_share = engine.share_resources

        def sharing_with_check(engine=engine, original=original_share):
            original()
            check_conservation(engine)

        engine.share_resources = sharing_with_check
        results[eager] = _drive(engine, platform, items)
    assert results[False] == results[True]
    assert not conservation_failures
    times = [t for _name, t in results[False]["order"]]
    assert times == sorted(times)


exchange = st.tuples(
    st.integers(0, 3),  # src
    st.integers(0, 3),  # dst
    st.integers(1, 100_000),  # bytes
)


@given(st.lists(exchange, min_size=1, max_size=8), st.integers(0, 20))
@settings(max_examples=15, deadline=None)
def test_smpirun_matches_between_event_loops(pattern, seed):
    """Whole MPI applications simulate to identical clocks either way."""
    pattern = [(s, d, n) for (s, d, n) in pattern if s != d]
    if not pattern:
        return

    def app(mpi):
        from repro.smpi import request as rq

        comm = mpi.COMM_WORLD
        reqs = []
        for index, (src, dst, nbytes) in enumerate(pattern):
            if mpi.rank == dst:
                reqs.append(comm.Irecv(np.zeros(nbytes, dtype=np.uint8),
                                       src, index))
        for index, (src, dst, nbytes) in enumerate(pattern):
            if mpi.rank == src:
                payload = np.full(nbytes, index % 251, dtype=np.uint8)
                reqs.append(comm.Isend(payload, dst, index))
        rq.waitall(reqs)
        if seed % 2:
            mpi.execute(1e6 * (mpi.rank + 1))
        return mpi.wtime()

    times = {}
    for eager in (False, True):
        platform = cluster("fzm", 4, split_duplex=bool(seed % 3))
        engine = Engine(platform, eager_updates=eager)
        result = smpirun(app, 4, platform, engine=engine)
        times[eager] = (result.simulated_time, tuple(result.returns))
    assert times[False] == times[True]


def _backends():
    from repro.simix import greenlet_available

    return ["coroutine", "thread"] + (
        ["greenlet"] if greenlet_available() else []
    )


@given(st.lists(exchange, min_size=1, max_size=8), st.integers(0, 20))
@settings(max_examples=15, deadline=None)
def test_smpirun_matches_between_context_backends(pattern, seed):
    """Execution-context backends are bit-identical on random workloads.

    The same generator-dialect application — nonblocking exchanges, a
    waitall, optional computes — must produce the same simulated clock,
    per-rank return values and wtime readings whether its ranks run as
    coroutine continuations, greenlets, or parked OS threads.
    """
    pattern = [(s, d, n) for (s, d, n) in pattern if s != d]
    if not pattern:
        return

    def app(mpi):
        from repro.smpi import request as rq

        comm = mpi.COMM_WORLD
        reqs = []
        for index, (src, dst, nbytes) in enumerate(pattern):
            if mpi.rank == dst:
                reqs.append(comm.Irecv(np.zeros(nbytes, dtype=np.uint8),
                                       src, index))
        for index, (src, dst, nbytes) in enumerate(pattern):
            if mpi.rank == src:
                payload = np.full(nbytes, index % 251, dtype=np.uint8)
                reqs.append(comm.Isend(payload, dst, index))
        yield from rq.co_waitall(reqs)
        if seed % 2:
            yield from mpi.co.execute(1e6 * (mpi.rank + 1))
        return (yield from mpi.co.wtime())

    times = {}
    for ctx in _backends():
        platform = cluster("fzc", 4, split_duplex=bool(seed % 3))
        result = smpirun(app, 4, platform, ctx=ctx)
        times[ctx] = (result.simulated_time, tuple(result.returns))
    oracle = times["thread"]
    assert all(t == oracle for t in times.values())
