"""Tests for Probe/Iprobe (extension beyond the paper's subset)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.smpi import ANY_SOURCE, ANY_TAG, INT, Status, smpirun
from repro.surf import cluster


def run(app, n=2):
    return smpirun(app, n, cluster("pb", n))


class TestProbe:
    def test_probe_blocks_until_message(self):
        def app(mpi):
            comm = mpi.COMM_WORLD
            if mpi.rank == 0:
                mpi.sleep(0.3)
                comm.Send(np.zeros(5, dtype=np.int32), 1, 9)
            else:
                status = Status()
                comm.Probe(0, 9, status)
                t_probe = mpi.wtime()
                buf = np.zeros(status.get_count(INT), dtype=np.int32)
                comm.Recv(buf, status.source, status.tag)
                return (t_probe, status.source, status.tag, buf.size)

        result = run(app, 2)
        t_probe, source, tag, size = result.returns[1]
        assert t_probe >= 0.3  # really waited for the announcement
        assert (source, tag, size) == (0, 9, 5)

    def test_probe_size_then_allocate(self):
        """The classic use case: learn the size, then allocate exactly."""

        def app(mpi):
            comm = mpi.COMM_WORLD
            if mpi.rank == 0:
                comm.Send(np.arange(17, dtype=np.float64), 1, 3)
            else:
                status = Status()
                comm.Probe(ANY_SOURCE, ANY_TAG, status)
                from repro.smpi import DOUBLE

                buf = np.zeros(status.get_count(DOUBLE))
                comm.Recv(buf, status.source, status.tag)
                return buf.tolist()

        assert run(app, 2).returns[1] == list(map(float, range(17)))

    def test_probe_does_not_consume(self):
        def app(mpi):
            comm = mpi.COMM_WORLD
            if mpi.rank == 0:
                comm.Send(np.zeros(1), 1, 1)
            else:
                comm.Probe(0, 1)
                comm.Probe(0, 1)  # still there
                buf = np.zeros(1)
                comm.Recv(buf, 0, 1)
                return "ok"

        assert run(app, 2).returns[1] == "ok"

    def test_iprobe_polls(self):
        def app(mpi):
            comm = mpi.COMM_WORLD
            if mpi.rank == 0:
                mpi.sleep(0.05)
                comm.Send(np.zeros(1), 1, 2)
            else:
                polls = 0
                status = Status()
                while not comm.Iprobe(0, 2, status):
                    polls += 1
                buf = np.zeros(1)
                comm.Recv(buf, 0, 2)
                return (polls, status.count_bytes)

        polls, nbytes = run(app, 2).returns[1]
        assert polls > 0  # polled several times before arrival
        assert nbytes == 8

    def test_iprobe_false_without_message(self):
        def app(mpi):
            if mpi.rank == 1:
                return mpi.COMM_WORLD.Iprobe(0, 5)
            return None

        assert run(app, 2).returns[1] is False

    def test_probe_respects_tag_filter(self):
        def app(mpi):
            comm = mpi.COMM_WORLD
            if mpi.rank == 0:
                comm.Send(np.zeros(1), 1, 10)
                mpi.sleep(0.1)
                comm.Send(np.zeros(2), 1, 20)
            else:
                status = Status()
                comm.Probe(0, 20, status)  # must skip the tag-10 message
                assert status.count_bytes == 16
                a, b = np.zeros(1), np.zeros(2)
                comm.Recv(b, 0, 20)
                comm.Recv(a, 0, 10)
                return "ok"

        assert run(app, 2).returns[1] == "ok"
