"""Tests for the packet-level reference simulator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.packetsim import PacketEngine, PacketParams
from repro.packetsim.core import (
    FRAME_OVERHEAD,
    MAX_SEGMENTS,
    MSS,
    FlowState,
    LinkChannel,
    segment_sizes,
    wire_bytes,
)
from repro.surf import cluster
from repro.surf.resources import Link, SharingPolicy


class TestSegmentation:
    def test_small_message_single_frame(self):
        assert segment_sizes(100) == [100]

    def test_exact_mss_multiples(self):
        assert segment_sizes(MSS * 3) == [MSS] * 3

    def test_remainder_segment(self):
        sizes = segment_sizes(MSS * 2 + 7)
        assert sizes == [MSS, MSS, 7]

    def test_zero_bytes(self):
        assert segment_sizes(0) == [0]

    def test_adaptive_coarsening_bounds_segments(self):
        huge = 64 * 1024 * 1024
        sizes = segment_sizes(huge)
        assert len(sizes) <= MAX_SEGMENTS + 1
        assert sum(sizes) == huge
        assert sizes[0] % MSS == 0  # super-segments stay MSS-aligned

    @given(st.integers(1, 10_000_000))
    @settings(max_examples=60, deadline=None)
    def test_byte_conservation(self, nbytes):
        assert sum(segment_sizes(nbytes)) == nbytes

    def test_wire_bytes_adds_per_mss_headers(self):
        assert wire_bytes(100) == 100 + FRAME_OVERHEAD
        assert wire_bytes(MSS) == MSS + FRAME_OVERHEAD
        assert wire_bytes(MSS * 4) == MSS * 4 + 4 * FRAME_OVERHEAD


class TestLinkChannel:
    def test_serialises_packets(self):
        channel = LinkChannel(Link("l", 1000.0, 0.01))  # 1000 B/s, 10 ms
        start1, arrive1 = channel.transmit(0.0, 100)
        start2, arrive2 = channel.transmit(0.0, 100)
        assert start1 == 0.0 and arrive1 == pytest.approx(0.11)
        assert start2 == pytest.approx(0.1)  # waits for the wire
        assert arrive2 == pytest.approx(0.21)

    def test_fatpipe_does_not_queue(self):
        channel = LinkChannel(
            Link("fat", 1000.0, 0.0, SharingPolicy.FATPIPE)
        )
        _s1, a1 = channel.transmit(0.0, 100)
        _s2, a2 = channel.transmit(0.0, 100)
        assert a1 == a2 == pytest.approx(0.1)


class TestFlowState:
    def test_slow_start_growth(self):
        flow = FlowState(1, (), [MSS] * 100, window=50, init_cwnd=2)
        assert flow.cwnd == 2
        flow.in_flight = 2
        assert not flow.can_inject()
        flow.on_ack()
        assert flow.cwnd == 3 and flow.can_inject()

    def test_cwnd_capped_by_window(self):
        flow = FlowState(1, (), [MSS] * 10, window=4, init_cwnd=2)
        for _ in range(10):
            flow.on_ack()
        assert flow.cwnd == 4


class TestPacketEngine:
    def test_transfer_time_close_to_nominal(self):
        engine = PacketEngine(cluster("pk", 2))
        action = engine.communicate("node-0", "node-1", 1_000_000)
        engine.run()
        nominal = 1_000_000 / 125e6
        # within 20 %: header overhead + store-and-forward + latency
        assert nominal < action.finish_time < nominal * 1.25

    def test_contention_on_backbone(self):
        engine = PacketEngine(cluster("pk2", 4, backbone_bandwidth="125MBps"))
        a = engine.communicate("node-0", "node-1", 1_000_000)
        b = engine.communicate("node-2", "node-3", 1_000_000)
        engine.run()
        solo_engine = PacketEngine(cluster("pk3", 4, backbone_bandwidth="125MBps"))
        solo = solo_engine.communicate("node-0", "node-1", 1_000_000)
        solo_engine.run()
        # two flows through the same 125 MB/s backbone take ~2x one flow
        assert a.finish_time > 1.7 * solo.finish_time
        assert abs(a.finish_time - b.finish_time) < 0.2 * a.finish_time

    def test_sharing_is_roughly_fair(self):
        engine = PacketEngine(cluster("pk4", 4, backbone_bandwidth="125MBps"))
        a = engine.communicate("node-0", "node-1", 4_000_000)
        b = engine.communicate("node-2", "node-3", 4_000_000)
        engine.run()
        assert a.finish_time == pytest.approx(b.finish_time, rel=0.15)

    def test_execute_and_sleep(self):
        engine = PacketEngine(cluster("pk5", 2))
        compute = engine.execute("node-0", 2e9)
        nap = engine.sleep(0.25)
        engine.run()
        assert compute.finish_time == pytest.approx(2.0)
        assert nap.finish_time == pytest.approx(0.25)

    def test_loopback(self):
        engine = PacketEngine(cluster("pk6", 2))
        action = engine.communicate("node-0", "node-0", 1_000_000)
        engine.run()
        assert action.finish_time < 1e-3

    def test_extra_latency_delays_start(self):
        engine = PacketEngine(cluster("pk7", 2))
        action = engine.communicate("node-0", "node-1", 1000,
                                    extra_latency=0.5)
        engine.run()
        assert action.finish_time > 0.5

    def test_noise_is_reproducible(self):
        def one_run(seed):
            engine = PacketEngine(
                cluster(f"pk8-{seed}", 2), PacketParams(noise=0.05, seed=seed)
            )
            action = engine.communicate("node-0", "node-1", 100_000)
            engine.run()
            return action.finish_time

        assert one_run(1) == one_run(1)
        assert one_run(1) != one_run(2)

    def test_cancel(self):
        from repro.surf.action import ActionState

        engine = PacketEngine(cluster("pk9", 2))
        action = engine.communicate("node-0", "node-1", 10_000_000)
        engine.cancel(action)
        engine.run()
        assert action.state is ActionState.FAILED

    def test_observer_fires(self):
        engine = PacketEngine(cluster("pk10", 2))
        seen = []
        action = engine.sleep(0.1)
        action.observer = seen.append
        engine.run()
        assert seen == [action]

    def test_stats(self):
        engine = PacketEngine(cluster("pk11", 2))
        engine.communicate("node-0", "node-1", 1000)
        engine.execute("node-0", 1e6)
        engine.run()
        assert engine.stats.actions_created == 2
        assert engine.stats.actions_completed == 2

    def test_link_utilisation_accounts_bytes(self):
        engine = PacketEngine(cluster("pk12", 2))
        engine.communicate("node-0", "node-1", 100_000)
        engine.run()
        utilisation = engine.link_utilisation()
        # every link on the path carried payload + headers
        for carried in utilisation.values():
            assert carried >= 100_000

    def test_flow_vs_analytical_engine_single_transfer(self):
        """With one uncontended flow the packet and flow kernels agree
        within the protocol-overhead margin — the validation premise."""
        from repro.surf import Engine
        from repro.surf.network_model import FactorsNetworkModel

        size = 4_000_000
        packet = PacketEngine(cluster("pkA", 2))
        pa = packet.communicate("node-0", "node-1", size)
        packet.run()

        flow = Engine(cluster("pkB", 2),
                      network_model=FactorsNetworkModel(1.0, 1.0))
        fa = flow.communicate("node-0", "node-1", size)
        flow.run()
        assert pa.finish_time == pytest.approx(fa.finish_time, rel=0.15)
