"""Tests for reduction operators and process groups."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MpiError
from repro.smpi import constants, op
from repro.smpi.group import GROUP_EMPTY, Group, IDENT, SIMILAR, UNEQUAL


class TestPredefinedOps:
    def test_arithmetic(self):
        a, b = np.array([1.0, 2.0]), np.array([3.0, 4.0])
        np.testing.assert_array_equal(op.SUM(a, b), [4.0, 6.0])
        np.testing.assert_array_equal(op.PROD(a, b), [3.0, 8.0])
        np.testing.assert_array_equal(op.MAX(a, b), [3.0, 4.0])
        np.testing.assert_array_equal(op.MIN(a, b), [1.0, 2.0])

    def test_logical(self):
        a = np.array([1, 0, 2], dtype=np.int32)
        b = np.array([1, 1, 0], dtype=np.int32)
        np.testing.assert_array_equal(op.LAND(a, b), [1, 0, 0])
        np.testing.assert_array_equal(op.LOR(a, b), [1, 1, 1])
        np.testing.assert_array_equal(op.LXOR(a, b), [0, 1, 1])

    def test_bitwise(self):
        a = np.array([0b1100], dtype=np.int32)
        b = np.array([0b1010], dtype=np.int32)
        assert op.BAND(a, b)[0] == 0b1000
        assert op.BOR(a, b)[0] == 0b1110
        assert op.BXOR(a, b)[0] == 0b0110

    def test_maxloc_minloc(self):
        a = np.array([[3.0, 0.0], [1.0, 0.0]])  # (value, index) pairs
        b = np.array([[3.0, 1.0], [2.0, 1.0]])
        got_max = op.MAXLOC(a, b)
        np.testing.assert_array_equal(got_max, [[3.0, 0.0], [2.0, 1.0]])
        got_min = op.MINLOC(a, b)
        np.testing.assert_array_equal(got_min, [[3.0, 0.0], [1.0, 0.0]])

    def test_user_defined(self):
        custom = op.create(lambda a, b: np.maximum(a, b) - 1, commute=False,
                           name="weird")
        assert not custom.commutative
        np.testing.assert_array_equal(
            custom(np.array([5.0]), np.array([9.0])), [8.0]
        )

    def test_create_rejects_non_callable(self):
        with pytest.raises(MpiError):
            op.create("not-a-function")  # type: ignore[arg-type]

    def test_shape_change_rejected(self):
        bad = op.create(lambda a, b: np.concatenate([a, b]))
        with pytest.raises(MpiError):
            bad(np.zeros(2), np.zeros(2))


@given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=20))
@settings(max_examples=50, deadline=None)
def test_sum_commutes(values):
    a = np.array(values)
    b = a[::-1].copy()
    np.testing.assert_allclose(op.SUM(a, b), op.SUM(b, a))


class TestGroup:
    def test_basic_accessors(self):
        group = Group((3, 1, 4))
        assert group.size == 3
        assert group.world_rank(0) == 3
        assert group.rank_of(4) == 2
        assert group.rank_of(99) == constants.UNDEFINED
        assert group.contains(1) and not group.contains(2)

    def test_rejects_duplicates_and_negative(self):
        with pytest.raises(MpiError):
            Group((1, 1))
        with pytest.raises(MpiError):
            Group((-1,))

    def test_world_rank_out_of_range(self):
        with pytest.raises(MpiError):
            Group((0, 1)).world_rank(2)

    def test_compare(self):
        a = Group((0, 1, 2))
        assert a.compare(Group((0, 1, 2))) == IDENT
        assert a.compare(Group((2, 1, 0))) == SIMILAR
        assert a.compare(Group((0, 1))) == UNEQUAL

    def test_union_preserves_order(self):
        a = Group((0, 2))
        b = Group((1, 2, 3))
        assert a.union(b).ranks == (0, 2, 1, 3)

    def test_intersection_difference(self):
        a = Group((0, 1, 2, 3))
        b = Group((2, 3, 4))
        assert a.intersection(b).ranks == (2, 3)
        assert a.difference(b).ranks == (0, 1)

    def test_incl_excl(self):
        g = Group((10, 11, 12, 13))
        assert g.incl([3, 0]).ranks == (13, 10)
        assert g.excl([1, 2]).ranks == (10, 13)

    def test_range_incl_excl(self):
        g = Group(tuple(range(10)))
        assert g.range_incl([(0, 6, 2)]).ranks == (0, 2, 4, 6)
        assert g.range_incl([(8, 6, -1)]).ranks == (8, 7, 6)
        assert g.range_excl([(1, 9, 1)]).ranks == (0,)
        with pytest.raises(MpiError):
            g.range_incl([(0, 5, 0)])

    def test_translate_ranks(self):
        a = Group((5, 6, 7))
        b = Group((7, 5))
        assert a.translate_ranks([0, 1, 2], b) == [1, constants.UNDEFINED, 0]

    def test_empty_group(self):
        assert GROUP_EMPTY.size == 0
        assert Group((1,)).intersection(GROUP_EMPTY).size == 0


world_ranks = st.lists(st.integers(0, 30), min_size=0, max_size=12,
                       unique=True).map(tuple)


@given(world_ranks, world_ranks)
@settings(max_examples=80, deadline=None)
def test_group_set_laws(ranks_a, ranks_b):
    """Union/intersection/difference behave like their set counterparts."""
    a, b = Group(ranks_a), Group(ranks_b)
    assert set(a.union(b).ranks) == set(ranks_a) | set(ranks_b)
    assert set(a.intersection(b).ranks) == set(ranks_a) & set(ranks_b)
    assert set(a.difference(b).ranks) == set(ranks_a) - set(ranks_b)
    # difference then union with the intersection restores the original set
    restored = a.difference(b).union(a.intersection(b))
    assert set(restored.ranks) == set(ranks_a)


@given(world_ranks)
@settings(max_examples=50, deadline=None)
def test_group_rank_roundtrip(ranks):
    group = Group(ranks)
    for local in range(group.size):
        assert group.rank_of(group.world_rank(local)) == local
