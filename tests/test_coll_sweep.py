"""The collective sweep driver: size ladders, spec building, row shape,
crossover detection, and the ``repro coll sweep`` CLI (including the
memo-cache round trip the CI smoke greps for)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.errors import ConfigError
from repro.sweep import (
    best_algorithms,
    coll_rows,
    coll_sweep_spec,
    crossovers,
    run_sweep,
    size_ladder,
)
from repro.sweep.workloads import WORKLOADS, fingerprint


class TestSizeLadder:
    def test_geometric_steps(self):
        assert size_ladder(1024, 8192, 2) == [1024, 2048, 4096, 8192]
        assert size_ladder("1KiB", "4KiB", 4) == [1024, 4096]

    def test_end_not_overshot(self):
        assert size_ladder(1000, 5000, 2) == [1000, 2000, 4000]

    def test_fractional_factor_progresses(self):
        sizes = size_ladder(1, 10, 1.1)
        assert sizes[0] == 1 and sizes == sorted(set(sizes))

    def test_bad_arguments(self):
        with pytest.raises(ConfigError):
            size_ladder(0, 10)
        with pytest.raises(ConfigError):
            size_ladder(100, 10)
        with pytest.raises(ConfigError):
            size_ladder(1, 10, 1.0)


class TestCollSweepSpec:
    def test_matrix_shape(self):
        spec = coll_sweep_spec(sizes=[1024, 4096], nprocs=[4, 8],
                               algos=["ring", "rabenseifner"],
                               platform="cluster:8")
        # 4 workloads (2 sizes x 2 nprocs) x 2 algorithm values
        assert len(spec.expand()) == 8
        assert spec.axes == {"coll.allreduce": ["ring", "rabenseifner"]}

    def test_unknown_collective_rejected(self):
        with pytest.raises(ConfigError):
            coll_sweep_spec(collective="telepathy")

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ConfigError):
            coll_sweep_spec(algos=["ring", "carrier-pigeon"])

    def test_builtin_registered_and_fingerprinted(self):
        assert "coll" in WORKLOADS and "dl_sgd" in WORKLOADS
        assert fingerprint("coll") != fingerprint("dl_sgd")

    def test_dl_fingerprint_tracks_dl_package(self):
        """dl_sgd delegates to repro.dl, so its fingerprint must hash the
        delegated modules' source too (cache invalidation on edits)."""
        import inspect

        import repro.dl.sgd as sgd_mod

        assert "repro.dl.sgd" in WORKLOADS["dl_sgd"].fingerprint_modules
        # sanity: the hashed source really is the module's current text
        assert inspect.getsource(sgd_mod)


class TestCollRows:
    def run_small(self, tmp_path, **kwargs):
        spec = coll_sweep_spec(
            sizes=[4096, 65536], nprocs=[4],
            algos=["recursive_doubling", "ring"],
            platform="cluster:4", iters=2, **kwargs)
        return run_sweep(spec, jobs=1, cache=str(tmp_path / "cache"))

    def test_rows_carry_latency_and_bandwidth(self, tmp_path):
        result = self.run_small(tmp_path)
        rows = coll_rows(result)
        assert len(rows) == 4
        for row in rows:
            assert row["error"] is None
            assert row["latency"] > 0
            assert row["bandwidth"] == pytest.approx(
                row["size"] / row["latency"])
            assert row["algorithm"] in ("recursive_doubling", "ring")
        assert {(r["size"], r["n"]) for r in rows} == {(4096, 4), (65536, 4)}

    def test_second_run_full_cache_hits_same_rows(self, tmp_path):
        first = self.run_small(tmp_path)
        second = self.run_small(tmp_path)
        assert first.misses == 4 and first.hits == 0
        assert second.hits == 4 and second.misses == 0
        # the rank0 metric survives the cache round trip bit-for-bit
        assert [r["latency"] for r in coll_rows(second)] == \
               [r["latency"] for r in coll_rows(first)]


class TestCrossovers:
    ROWS = [
        {"platform": "p", "collective": "allreduce", "n": 8, "size": size,
         "algorithm": algo, "latency": lat, "bandwidth": None,
         "cached": False, "error": None}
        for size, algo, lat in [
            (1024, "a", 1.0), (1024, "b", 2.0),
            (4096, "a", 3.0), (4096, "b", 2.5),
            (16384, "a", 9.0), (16384, "b", 4.0),
        ]
    ]

    def test_best_algorithms_picks_minimum(self):
        best = best_algorithms(self.ROWS)
        assert [(b["size"], b["best"]) for b in best] == \
               [(1024, "a"), (4096, "b"), (16384, "b")]
        assert best[0]["margin"] == pytest.approx(2.0)

    def test_crossovers_report_the_transition(self):
        points = crossovers(self.ROWS)
        assert points == [{
            "platform": "p", "n": 8,
            "below_size": 1024, "below_best": "a",
            "above_size": 4096, "above_best": "b",
        }]

    def test_errored_rows_are_ignored(self):
        rows = [dict(r) for r in self.ROWS]
        rows[0]["error"] = "boom"
        best = best_algorithms(rows)
        assert best[0]["best"] == "b"  # 'a' at 1024 dropped


class TestCollCli:
    ARGS = ["coll", "sweep", "--coll", "allreduce",
            "--b", "4KiB", "--e", "16KiB", "--f", "4",
            "--np", "4", "--algos", "recursive_doubling,ring",
            "--iters", "2", "--jobs", "1", "--platform", "cluster:4"]

    def test_run_then_full_cache_hits(self, tmp_path, capsys):
        cache = ["--cache-dir", str(tmp_path / "cache")]
        assert main(self.ARGS + cache) == 0
        first = capsys.readouterr().out
        assert "cache hits     : 0/4" in first
        assert "algorithm" in first and "latency" in first
        assert main(self.ARGS + cache) == 0
        second = capsys.readouterr().out
        assert "cache hits     : 4/4 (all points served from cache)" in second

    def test_csv_output(self, tmp_path, capsys):
        out = tmp_path / "rows.csv"
        assert main(self.ARGS + ["--cache-dir", str(tmp_path / "c"),
                                 "--format", "csv", "-o", str(out)]) == 0
        capsys.readouterr()
        lines = out.read_text().splitlines()
        assert lines[0].startswith("platform,collective,size,n,algorithm")
        assert len(lines) == 5

    def test_json_output_parses(self, tmp_path, capsys):
        assert main(self.ARGS + ["--cache-dir", str(tmp_path / "c"),
                                 "--format", "json"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("["):])
        assert len(payload) == 4

    def test_algos_all(self, tmp_path, capsys):
        args = ["coll", "sweep", "--b", "4KiB", "--e", "4KiB",
                "--np", "4", "--algos", "all", "--iters", "1",
                "--jobs", "1", "--platform", "cluster:4",
                "--cache-dir", str(tmp_path / "c")]
        assert main(args) == 0
        out = capsys.readouterr().out
        for algo in ("recursive_doubling", "rabenseifner", "ring",
                     "two_level", "reduce_bcast"):
            assert algo in out

    def test_bad_algorithm_is_a_config_error(self, capsys):
        assert main(["coll", "sweep", "--algos", "telepathy"]) == 2
        assert "error:" in capsys.readouterr().err


class TestDlSgdBuiltinSweep:
    def test_dl_sgd_points_report_step_time(self, tmp_path):
        from repro.sweep import SweepSpec

        spec = SweepSpec.from_dict({
            "name": "dl",
            "platforms": ["cluster:4"],
            "workloads": [
                {"builtin": "dl_sgd", "n": 4,
                 "params": {"communicator": name, "layers": "2x64KiB",
                            "bucket": "64KiB", "steps": 1,
                            "flops_per_step": 1e6}}
                for name in ("flat", "ring", "hierarchical")
            ],
        })
        result = run_sweep(spec, jobs=1, cache=str(tmp_path / "cache"))
        assert not result.errors
        assert all(p.rank0 > 0 for p in result.points)
