"""Property-based equivalence of dynamic availability across engine modes.

Capacity changes from availability profiles, ON/OFF state profiles and
scripted ``set_availability`` calls flow through the incremental max-min
solver and the lazy completion-date heap as rate-change events.  Like
the plain fuzz suite (test_fuzz_lazy.py), these tests assert that none
of that machinery leaks into observable results: any fault/availability
workload must produce bit-identical clocks, completion orders and final
states (``==``, not ``approx``) between the lazy and eager event loops
and between the incremental and full-rebuild solvers.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.surf import Engine, cluster, parse_profile

_FUZZ = settings(max_examples=20, deadline=None)

N_HOSTS = 6

# one randomized workload item: (kind, a, b, amount)
work_item = st.tuples(
    st.sampled_from(["comm", "exec", "sleep", "avail", "fail", "restore",
                     "fail_host"]),
    st.integers(0, N_HOSTS - 1),
    st.integers(0, N_HOSTS - 1),
    st.integers(1, 5_000_000),
)

# a small availability profile: 1-3 points, optionally periodic
_point = st.tuples(st.integers(0, 50), st.integers(0, 4))
profile_spec = st.tuples(st.lists(_point, min_size=1, max_size=3),
                         st.booleans())


def _make_profiles(platform, specs):
    """Attach generated profiles to the first links before engine build."""
    for link, ((points, periodic), kind) in zip(platform.links, specs):
        times = sorted({t for t, _ in points})
        pts = [(t * 1e-4, v / 4.0) for t, (_, v) in zip(times, points)]
        if not pts:
            continue
        if pts[-1][1] == 0.0:
            # a trace ending at 0 would stall (availability) or strand
            # (state) flows forever — real traces recover, so do ours
            pts[-1] = (pts[-1][0], 1.0)
        period = pts[-1][0] + 1e-3 if periodic else None
        profile = parse_profile(
            "".join(f"{t!r} {v!r}\n" for t, v in pts)
            if period is None else
            f"PERIODICITY {period!r}\n"
            + "".join(f"{t!r} {v!r}\n" for t, v in pts),
            name=link.name,
        )
        if kind == "state":
            link.state_profile = profile
        else:
            link.availability_profile = profile


def _drive(engine, platform, items):
    """Run one scripted fault workload; return an observable transcript."""
    actions = []
    completion_order = []
    resource_log = []
    engine.resource_listeners.append(
        lambda event, resource, now: resource_log.append(
            (event, resource.name, now)))

    def observe(action):
        completion_order.append((action.name, engine.now))

    # a workload may leave flows stalled at availability 0 forever; the
    # engine contract says advance()/run() raise then.  Both modes must
    # stall at the same clock with the same message, so a stall anywhere
    # in the script ends the drive and becomes part of the transcript.
    stalled = None

    def tick(delta):
        nonlocal stalled
        try:
            engine.advance(delta)
        except SimulationError as exc:
            stalled = str(exc)
        return stalled is None

    links = platform.links
    for step_no, (kind, a, b, amount) in enumerate(items):
        if kind == "comm" and a != b:
            action = engine.communicate(f"node-{a}", f"node-{b}", amount,
                                        name=f"comm-{step_no}")
        elif kind == "exec":
            action = engine.execute(f"node-{a}", amount * 100,
                                    name=f"exec-{step_no}")
        elif kind == "sleep":
            action = engine.sleep(amount * 1e-9, name=f"sleep-{step_no}")
        elif kind == "avail":
            engine.set_availability(links[a % len(links)], (b % 5) / 4.0)
            if not tick(amount * 1e-7):
                break
            continue
        elif kind == "fail":
            engine.fail_resource(links[a % len(links)])
            if not tick(amount * 1e-7):
                break
            continue
        elif kind == "restore":
            engine.restore_resource(links[a % len(links)])
            if not tick(amount * 1e-7):
                break
            continue
        elif kind == "fail_host":
            engine.fail_resource(platform.hosts[a % len(platform.hosts)])
            if not tick(amount * 1e-7):
                break
            continue
        else:
            continue
        action.observer = observe
        actions.append(action)
        # stagger arrivals so capacity events interleave with running flows
        if step_no % 2 and not tick(amount * 1e-7):
            break
    if stalled is None:
        try:
            final = engine.run()
        except SimulationError as exc:
            final = engine.now
            stalled = str(exc)
    else:
        final = engine.now
    return {
        "final_clock": final,
        "stalled": stalled,
        "order": completion_order,
        "resources": resource_log,
        "states": [(a.name, a.state.value, a.finish_time, a.remaining)
                   for a in actions],
        "stats": (engine.stats.capacity_events,
                  engine.stats.resource_failures,
                  engine.stats.resource_restores),
    }


@given(st.lists(work_item, min_size=1, max_size=20),
       st.lists(st.tuples(profile_spec, st.sampled_from(["availability",
                                                         "state"])),
                max_size=3),
       st.integers(0, 3))
@_FUZZ
def test_faults_identical_between_lazy_and_eager(items, specs, topology):
    """Any availability workload clocks identically in both event loops."""
    results = {}
    for eager in (False, True):
        platform = cluster(
            "fza", N_HOSTS,
            backbone_bandwidth=None if topology % 2 else "1.25GBps",
            split_duplex=topology >= 2)
        _make_profiles(platform, specs)
        engine = Engine(platform, eager_updates=eager)
        results[eager] = _drive(engine, platform, items)
    assert results[False] == results[True]


@given(st.lists(work_item, min_size=1, max_size=20),
       st.lists(st.tuples(profile_spec, st.sampled_from(["availability",
                                                         "state"])),
                max_size=3),
       st.integers(0, 3))
@_FUZZ
def test_faults_identical_between_incremental_and_full(items, specs,
                                                       topology):
    """Capacity events keep the two solver paths bit-identical too."""
    results = {}
    for full in (False, True):
        platform = cluster(
            "fzb", N_HOSTS,
            backbone_bandwidth=None if topology % 2 else "1.25GBps",
            split_duplex=topology >= 2)
        _make_profiles(platform, specs)
        engine = Engine(platform, full_reshare=full)
        results[full] = _drive(engine, platform, items)
    assert results[False] == results[True]


@given(st.lists(_point, min_size=1, max_size=4), st.booleans(),
       st.integers(1, 4))
@settings(max_examples=15, deadline=None)
def test_periodic_profiles_identical_between_modes(points, periodic, n_comms):
    """Periodic profiles (infinite event streams) stay mode-independent."""
    times = sorted({t for t, _ in points})
    pts = [(t * 1e-4, max(v, 1) / 4.0)  # never 0: flows must finish
           for t, (_, v) in zip(times, points)]
    text = "".join(f"{t!r} {v!r}\n" for t, v in pts)
    if periodic:
        text = f"PERIODICITY {pts[-1][0] + 1e-3!r}\n" + text
    results = {}
    for eager in (False, True):
        platform = cluster("fzp", 4, backbone_bandwidth=None)
        for link in platform.links:
            link.availability_profile = parse_profile(text, name=link.name)
        engine = Engine(platform, eager_updates=eager)
        for i in range(n_comms):
            engine.communicate(f"node-{i % 4}", f"node-{(i + 1) % 4}",
                               500_000 * (i + 1), name=f"c{i}")
        results[eager] = engine.run()
    assert results[False] == results[True]
