"""End-to-end equivalence of the indexed matcher and the scan oracle.

``SmpiConfig(match="index")`` and ``match="scan")`` must be
*bit-identical*: same per-rank receive transcripts, same simulated
clocks, across every context backend, faults included.  These tests
fuzz whole simulations over random wildcard/exact receive mixes.

The receive mixes are deadlock-free **by layered construction**: every
rank posts its exact receives first, then single-wildcard receives of
one kind per test case (all ``(src, ANY_TAG)`` or all ``(ANY_SOURCE,
tag)`` — mixing the two kinds can cross-steal), then ``(ANY_SOURCE,
ANY_TAG)`` receives.  Because messages from one source arrive in order
and an older-posted exact receive always wins while it is available,
every matching order completes — whichever queue implementation
resolves it.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.smpi import SmpiConfig, Status, smpirun
from repro.smpi.constants import ANY_SOURCE, ANY_TAG, ERR_PROC_FAILED
from repro.surf import Engine, cluster

_FUZZ = settings(max_examples=15, deadline=None)

N_RANKS = 4

# one send: (src 1..3, tag 0..2, nbytes, claim class)
send_spec = st.tuples(
    st.integers(1, 3),
    st.integers(0, 2),
    st.integers(1, 2000),
    st.sampled_from(["exact", "wild", "any"]),
)


def _recv_layers(sends, wild_kind):
    """The layered receive plan for rank 0 (see module docstring).

    Returns ``[(source, tag, nbytes), ...]`` in posting order: exact
    receives first, then the single-wildcard layer, then ANY/ANY.
    """
    exact, wild, anyany = [], [], []
    for src, tag, nbytes, claim in sends:
        if claim == "exact":
            exact.append((src, tag, nbytes))
        elif claim == "wild":
            if wild_kind == "src":
                wild.append((src, ANY_TAG, nbytes))
            else:
                wild.append((ANY_SOURCE, tag, nbytes))
        else:
            anyany.append((ANY_SOURCE, ANY_TAG, nbytes))
    return exact + wild + anyany


def _matching_app(sends, wild_kind):
    """Rank 0 posts the layered receive plan; ranks 1..3 send in order.

    Each payload is filled with the send's index, so the per-slot
    transcript identifies exactly which message matched which receive.
    """
    plan = _recv_layers(sends, wild_kind)

    def app(mpi):
        from repro.smpi import request as rq

        comm = mpi.COMM_WORLD
        if mpi.rank == 0:
            recvs, bufs = [], []
            for source, tag, nbytes in plan:
                # receive buffers sized for the largest send: wildcards
                # may legally match any message of the claim class
                buf = np.zeros(2000, dtype=np.uint8)
                recvs.append(comm.Irecv(buf, source, tag))
                bufs.append(buf)
            statuses = rq.waitall(recvs)
            return [
                (int(buf[0]), s.source, s.tag, s.count_bytes)
                for buf, s in zip(bufs, statuses)
            ]
        sends_here = []
        for index, (src, tag, nbytes, _claim) in enumerate(sends):
            if mpi.rank == src:
                payload = np.full(nbytes, index % 251, dtype=np.uint8)
                sends_here.append(comm.Isend(payload, 0, tag))
        rq.waitall(sends_here)
        return mpi.wtime()

    return app


def _run(app, mode, ctx=None, with_stats=False):
    platform = cluster("fm", N_RANKS)
    result = smpirun(app, N_RANKS, platform,
                     config=SmpiConfig(match=mode), ctx=ctx)
    if with_stats:
        return result, platform
    return result.returns, result.simulated_time


@given(st.lists(send_spec, min_size=1, max_size=14),
       st.sampled_from(["src", "tag"]))
@_FUZZ
def test_index_and_scan_are_bit_identical(sends, wild_kind):
    """Random exact/wildcard mixes: transcripts AND clocks must agree."""
    app = _matching_app(sends, wild_kind)
    assert _run(app, "index") == _run(app, "scan")


@given(st.lists(send_spec, min_size=1, max_size=10),
       st.sampled_from(["src", "tag"]))
@settings(max_examples=8, deadline=None)
def test_backends_agree_under_the_index(sends, wild_kind):
    """coroutine- and thread-backed runs resolve matches identically."""
    app = _matching_app(sends, wild_kind)
    base = _run(app, "index")
    assert _run(app, "index", ctx="thread") == base
    assert _run(app, "scan", ctx="thread") == base


def test_duplicate_envelopes_stay_ordered():
    """Many identical (src, tag) envelopes: FIFO per envelope, both modes."""
    sends = [(1, 0, 64, "exact")] * 6 + [(1, 0, 64, "wild")] * 4
    app = _matching_app(sends, "src")
    index, scan = _run(app, "index"), _run(app, "scan")
    assert index == scan
    transcript = index[0][0]
    assert sorted(t[0] for t in transcript) == list(range(10))


@pytest.mark.parametrize("mode", ["index", "scan"])
def test_repeat_runs_are_deterministic_with_pooling(mode):
    """Recycled requests draw fresh ids, so repeats are byte-identical."""
    sends = [(s, t, 512, c)
             for s in (1, 2, 3) for t in (0, 1)
             for c in ("exact", "any")]
    app = _matching_app(sends, "src")
    assert _run(app, mode) == _run(app, mode)


@pytest.mark.parametrize("mode", ["index", "scan"])
def test_fail_peer_sweeps_only_the_dead_source(mode):
    """kill-rank faults resolve identically through both matchers."""

    def app(mpi):
        comm = mpi.COMM_WORLD
        if mpi.rank == 0:
            # one pending receive per peer; node-1's rank dies mid-run
            buf = np.zeros(8, dtype=np.uint8)
            comm.Recv(buf, 2, 0)
            try:
                comm.Recv(buf, 1, 0)
            except Exception as exc:  # MpiError(ERR_PROC_FAILED)
                return getattr(exc, "code", None)
            return "delivered"
        if mpi.rank == 1:
            mpi.sleep(1.0)  # killed long before this send happens
            comm.Send(np.zeros(8, dtype=np.uint8), 0, 0)
        if mpi.rank == 2:
            comm.Send(np.zeros(8, dtype=np.uint8), 0, 0)

    platform = cluster("fp", N_RANKS)
    engine = Engine(platform)
    engine.at(1e-3, lambda: engine.fail_resource(platform.host("node-1")))
    result = smpirun(
        app, N_RANKS, platform, engine=engine,
        config=SmpiConfig(match=mode, on_host_down="kill-rank"),
    )
    assert result.returns[0] == ERR_PROC_FAILED
    assert result.returns[1] is None  # killed, not returned


@pytest.mark.parametrize("mode", ["index", "scan"])
def test_iprobe_sees_the_unexpected_queue(mode):
    """Iprobe answers through the same index the matcher uses."""

    def app(mpi):
        comm = mpi.COMM_WORLD
        if mpi.rank == 0:
            status = Status()
            while not comm.Iprobe(ANY_SOURCE, ANY_TAG, status):
                pass
            probed = (status.source, status.tag, status.count_bytes)
            buf = np.zeros(status.count_bytes, dtype=np.uint8)
            comm.Recv(buf, status.source, status.tag)
            return probed, int(buf[0])
        if mpi.rank == 1:
            comm.Send(np.full(32, 7, dtype=np.uint8), 0, 5)

    result = smpirun(app, 2, cluster("ip", 2),
                     config=SmpiConfig(match=mode))
    assert result.returns[0] == ((1, 5, 32), 7)


def test_match_counters_land_in_engine_stats():
    """The deterministic counters are always on and index beats scan."""
    sends = [(src, 0, 128, "exact") for src in (1, 2, 3)] * 8

    def probes(mode):
        app = _matching_app(sends, "src")
        platform = cluster("mc", N_RANKS)
        result = smpirun(app, N_RANKS, platform,
                         config=SmpiConfig(match=mode))
        stats = result.stats
        assert stats.match_probes > 0
        return stats.match_probes

    assert probes("index") <= probes("scan")
