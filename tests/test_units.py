"""Tests for quantity parsing/formatting."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError
from repro.units import (
    GiB,
    KiB,
    MiB,
    format_bandwidth,
    format_size,
    format_time,
    parse_bandwidth,
    parse_size,
    parse_speed,
    parse_time,
)


class TestParseBandwidth:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("125MBps", 125e6),
            ("1.25GBps", 1.25e9),
            ("1Gbps", 125e6),
            ("10Gbps", 1.25e9),
            ("100bps", 12.5),
            ("1KiBps", 1024.0),
            (5e8, 5e8),
            ("0.5MBps", 5e5),
        ],
    )
    def test_values(self, text, expected):
        assert parse_bandwidth(text) == pytest.approx(expected)

    def test_rejects_garbage(self):
        with pytest.raises(ConfigError):
            parse_bandwidth("fast")
        with pytest.raises(ConfigError):
            parse_bandwidth("10Mz")
        with pytest.raises(ConfigError):
            parse_bandwidth("10Xbps")


class TestParseTime:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("50us", 5e-5),
            ("1.5ms", 1.5e-3),
            ("2s", 2.0),
            ("10ns", 1e-8),
            ("1m", 60.0),
            ("1h", 3600.0),
            (0.25, 0.25),
        ],
    )
    def test_values(self, text, expected):
        assert parse_time(text) == pytest.approx(expected)

    def test_rejects_unknown_suffix(self):
        with pytest.raises(ConfigError):
            parse_time("10lightyears")


class TestParseSpeed:
    @pytest.mark.parametrize(
        "text,expected",
        [("1Gf", 1e9), ("2.5Gf", 2.5e9), ("100Mf", 1e8), ("3f", 3.0), (7e7, 7e7)],
    )
    def test_values(self, text, expected):
        assert parse_speed(text) == pytest.approx(expected)

    def test_rejects_missing_f(self):
        with pytest.raises(ConfigError):
            parse_speed("2.5GHz")


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("64KiB", 64 * KiB),
            ("4MiB", 4 * MiB),
            ("16GiB", 16 * GiB),
            ("1kB", 1000),
            ("1MB", 10**6),
            (12345, 12345),
            ("0B", 0),
        ],
    )
    def test_values(self, text, expected):
        assert parse_size(text) == expected

    def test_rejects_no_b(self):
        with pytest.raises(ConfigError):
            parse_size("64Ki")


class TestFormatting:
    def test_format_size(self):
        assert format_size(512) == "512 B"
        assert format_size(65536) == "64.0 KiB"
        assert format_size(3 * MiB) == "3.0 MiB"
        assert format_size(5 * GiB) == "5.0 GiB"

    def test_format_time(self):
        assert format_time(0) == "0 s"
        assert "ns" in format_time(5e-8)
        assert "us" in format_time(5e-5)
        assert "ms" in format_time(5e-3)
        assert format_time(2.5) == "2.500 s"

    def test_format_bandwidth(self):
        assert format_bandwidth(125e6) == "125.0 MBps"
        assert format_bandwidth(999.0) == "999.0 Bps"


@given(st.floats(1e-9, 1e9))
def test_time_roundtrip_seconds(value):
    assert parse_time(value) == value


@given(st.integers(0, 2**50))
def test_size_roundtrip_int(value):
    assert parse_size(value) == value
