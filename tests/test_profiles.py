"""Availability/state profiles: parsing, engine semantics, XML, tracing."""

from __future__ import annotations

import pytest

from repro.errors import PlatformError, SimulationError
from repro.smpi import SmpiConfig, smpirun
from repro.surf import Engine, Profile, cluster, load_profile, parse_profile
from repro.surf.action import ActionState
from repro.surf.network_model import FactorsNetworkModel
from repro.surf.platform_xml import dumps_platform_xml, loads_platform_xml


def _ideal_engine(platform, **kwargs):
    """Engine without the 0.97 TCP derating, so capacity math is exact."""
    return Engine(platform, network_model=FactorsNetworkModel(1.0, 1.0),
                  **kwargs)


class TestProfileParsing:
    def test_parse_basic(self):
        profile = parse_profile("0.0 1.0\n5.0 0.5\n", "p")
        assert profile.points == ((0.0, 1.0), (5.0, 0.5))
        assert profile.period is None

    def test_parse_periodicity_and_comments(self):
        text = "# a comment\nPERIODICITY 10.0\n0.0 1.0\n5.0 0.5  # inline\n"
        profile = parse_profile(text, "p")
        assert profile.period == 10.0
        assert profile.points == ((0.0, 1.0), (5.0, 0.5))

    @pytest.mark.parametrize("text", [
        "",                       # no points
        "1.0 0.5\n0.5 1.0\n",     # times not increasing
        "-1.0 0.5\n",             # negative time
        "0.0 -0.5\n",             # negative value
        "0.0 nan\n",              # non-finite value
        "PERIODICITY 0\n0 1\n",   # period must be > 0
        "PERIODICITY 1\n0 1\n2 0.5\n",  # period before last point
        "0.0\n",                  # malformed line
        "0.0 1.0 2.0\n",          # too many fields
        "PERIODICITY\n0 1\n",     # directive without value
    ])
    def test_rejects_bad_input(self, text):
        with pytest.raises(PlatformError):
            parse_profile(text, "bad")

    def test_dumps_round_trip(self):
        profile = parse_profile("PERIODICITY 4.0\n0.0 1.0\n1.5 0.25\n", "p")
        assert parse_profile(profile.dumps(), "q") == profile

    def test_load_profile_uses_stem_as_name(self, tmp_path):
        path = tmp_path / "wave.trace"
        path.write_text("0.0 0.5\n", encoding="utf-8")
        profile = load_profile(path)
        assert profile.name == "wave"
        assert profile.points == ((0.0, 0.5),)

    def test_value_at_one_shot(self):
        profile = Profile(((1.0, 0.5), (2.0, 0.25)))
        assert profile.value_at(0.5) is None  # nominal until first point
        assert profile.value_at(1.0) == 0.5
        assert profile.value_at(1.9) == 0.5
        assert profile.value_at(100.0) == 0.25  # last value holds

    def test_value_at_periodic(self):
        profile = Profile(((0.0, 1.0), (1.0, 0.5)), period=2.0)
        assert profile.value_at(0.5) == 1.0
        assert profile.value_at(1.5) == 0.5
        assert profile.value_at(2.5) == 1.0  # second cycle
        assert profile.value_at(3.5) == 0.5

    def test_iter_events_periodic_is_infinite(self):
        profile = Profile(((0.0, 1.0), (1.0, 0.5)), period=2.0)
        events = profile.iter_events()
        got = [next(events) for _ in range(5)]
        assert got == [(0.0, 1.0), (1.0, 0.5), (2.0, 1.0), (3.0, 0.5),
                       (4.0, 1.0)]

    def test_name_is_not_part_of_equality(self):
        assert Profile(((0.0, 1.0),), name="a") == Profile(((0.0, 1.0),),
                                                           name="b")


class TestEngineAvailability:
    def test_set_availability_scales_transfer_time(self):
        times = {}
        for factor in (1.0, 0.5):
            platform = cluster("av", 2, backbone_bandwidth=None,
                               link_latency=0)
            engine = _ideal_engine(platform)
            for link in platform.links:
                engine.set_availability(link, factor)
            engine.communicate("node-0", "node-1", 10_000_000)
            times[factor] = engine.run()
        assert times[0.5] == pytest.approx(2 * times[1.0])

    def test_set_availability_validates_factor(self):
        platform = cluster("av2", 2)
        engine = Engine(platform)
        link = platform.link("av2-l0")
        for bad in (-0.5, float("nan"), float("inf")):
            with pytest.raises(SimulationError):
                engine.set_availability(link, bad)

    def test_mid_flight_capacity_change_reanchors(self):
        # full speed for the first half, half speed for the second:
        # a transfer that would take 2t takes 1t + 2*(1t) = 3t total
        platform = cluster("av3", 2, backbone_bandwidth=None, link_latency=0)
        engine = _ideal_engine(platform)
        action = engine.communicate("node-0", "node-1", 10_000_000)
        baseline = 10_000_000 / platform.link("av3-l0").bandwidth
        half_t = baseline / 2

        def degrade():
            for link in platform.links:
                engine.set_availability(link, 0.5)

        engine.at(half_t, degrade)
        final = engine.run()
        assert action.state is ActionState.DONE
        assert final == pytest.approx(half_t + 2 * half_t)

    def test_availability_profile_fires_from_attached_resource(self):
        platform = cluster("av4", 2, backbone_bandwidth=None, link_latency=0)
        for link in platform.links:
            link.availability_profile = parse_profile("0 0.5\n", "half")
        engine = _ideal_engine(platform)
        engine.communicate("node-0", "node-1", 10_000_000)
        degraded = engine.run()

        platform2 = cluster("av4", 2, backbone_bandwidth=None, link_latency=0)
        engine2 = _ideal_engine(platform2)
        engine2.communicate("node-0", "node-1", 10_000_000)
        assert degraded == pytest.approx(2 * engine2.run())

    def test_zero_availability_stalls_until_restore_point(self):
        # rate 0 is not a deadlock when the profile has a later point
        platform = cluster("av5", 2, backbone_bandwidth=None, link_latency=0)
        profile = parse_profile("0.0 0.0\n0.5 1.0\n", "outage")
        for link in platform.links:
            link.availability_profile = profile
        engine = _ideal_engine(platform)
        engine.communicate("node-0", "node-1", 1_000_000)
        baseline = 1_000_000 / platform.link("av5-l0").bandwidth
        assert engine.run() == pytest.approx(0.5 + baseline)

    def test_state_profile_fails_and_restores_resource(self):
        platform = cluster("st", 2)
        link = platform.link("st-backbone")
        link.state_profile = parse_profile("0.001 0\n0.01 1\n", "flap")
        engine = Engine(platform)
        doomed = engine.communicate("node-0", "node-1", 50_000_000)
        engine.sleep(0.02)  # keep the run alive past the restore point
        engine.run()
        assert doomed.state is ActionState.FAILED
        assert not engine.is_dead(link)  # restored by the second point
        assert engine.stats.resource_failures == 1
        assert engine.stats.resource_restores == 1

    def test_attach_profile_rejects_unknown_kind(self):
        platform = cluster("st2", 2)
        engine = Engine(platform)
        with pytest.raises(SimulationError):
            engine.attach_profile(platform.link("st2-l0"),
                                  parse_profile("0 1\n", "p"), kind="nope")

    def test_fail_and_restore_are_idempotent(self):
        platform = cluster("st3", 2)
        engine = Engine(platform)
        link = platform.link("st3-l0")
        engine.restore_resource(link)  # restoring a live link: no-op
        engine.fail_resource(link)
        engine.fail_resource(link)
        assert engine.stats.resource_failures == 1
        engine.restore_resource(link)
        engine.restore_resource(link)
        assert engine.stats.resource_restores == 1

    def test_resource_listeners_observe_events(self):
        platform = cluster("ls", 2)
        engine = Engine(platform)
        seen = []
        engine.resource_listeners.append(
            lambda event, resource, now: seen.append((event, resource.name)))
        link = platform.link("ls-l0")
        engine.set_availability(link, 0.5)
        engine.fail_resource(link)
        engine.restore_resource(link)
        assert seen == [("capacity", "ls-l0"), ("fail", "ls-l0"),
                        ("restore", "ls-l0")]


class TestPlatformXmlTraces:
    XML = """<?xml version="1.0"?>
    <platform version="4">
      <zone id="z" routing="Full">
        <host id="h0" speed="1Gf"/>
        <host id="h1" speed="1Gf"/>
        <link id="l0" bandwidth="125MBps" latency="50us"/>
        <route src="h0" dst="h1"><link_ctn id="l0"/></route>
        <trace id="wave" periodicity="2.0">
          0.0 1.0
          1.0 0.5
        </trace>
        <trace_connect trace="wave" element="l0" kind="BANDWIDTH"/>
        <trace id="flap">
          0.5 0
          1.5 1
        </trace>
        <trace_connect trace="flap" element="h1" kind="HOST_AVAIL"/>
      </zone>
    </platform>"""

    def test_trace_connect_attaches_profiles(self):
        platform = loads_platform_xml(self.XML)
        wave = platform.link("l0").availability_profile
        assert wave.period == 2.0 and wave.points[1] == (1.0, 0.5)
        flap = platform.host("h1").state_profile
        assert flap.points == ((0.5, 0.0), (1.5, 1.0))

    def test_dump_round_trips_profiles(self):
        platform = loads_platform_xml(self.XML)
        again = loads_platform_xml(dumps_platform_xml(platform))
        assert (again.link("l0").availability_profile
                == platform.link("l0").availability_profile)
        assert (again.host("h1").state_profile
                == platform.host("h1").state_profile)

    def test_unknown_trace_reference_is_an_error(self):
        bad = """<platform version="4"><zone id="z" routing="Full">
            <link id="l" bandwidth="1MBps"/>
            <trace_connect trace="ghost" element="l" kind="BANDWIDTH"/>
            </zone></platform>"""
        with pytest.raises(PlatformError):
            loads_platform_xml(bad)

    def test_unknown_kind_is_an_error(self):
        bad = """<platform version="4"><zone id="z" routing="Full">
            <link id="l" bandwidth="1MBps"/>
            <trace id="t">0 1</trace>
            <trace_connect trace="t" element="l" kind="LATENCY"/>
            </zone></platform>"""
        with pytest.raises(PlatformError):
            loads_platform_xml(bad)

    def test_profile_file_attributes(self, tmp_path):
        (tmp_path / "bw.trace").write_text("0 0.5\n", encoding="utf-8")
        (tmp_path / "p.xml").write_text(
            """<platform version="4"><zone id="z" routing="Full">
            <host id="h" speed="1Gf" availability_file="bw.trace"/>
            <link id="l" bandwidth="1MBps" bandwidth_file="bw.trace"/>
            </zone></platform>""", encoding="utf-8")
        from repro.surf import load_platform_xml

        platform = load_platform_xml(tmp_path / "p.xml")
        assert platform.link("l").availability_profile.points == ((0.0, 0.5),)
        assert platform.host("h").availability_profile.points == ((0.0, 0.5),)


class TestCapacityTracing:
    def test_timeline_records_capacity_steps(self):
        platform = cluster("ct", 2, backbone_bandwidth=None)
        engine = Engine(platform)
        timeline = engine.enable_timeline()
        link = platform.link("ct-l0")
        engine.communicate("node-0", "node-1", 1_000_000)
        engine.at(0.001, lambda: engine.set_availability(link, 0.5))
        engine.run()
        steps = timeline.capacity_steps("ct-l0")
        assert steps == [(0.001, pytest.approx(0.5 * link.bandwidth))]
        assert engine.stats.capacity_events == 1

    def test_capacity_steps_round_trip_through_csv(self):
        from repro.trace import Tracer

        platform = cluster("cc", 2, backbone_bandwidth=None)
        engine = Engine(platform)
        link = platform.link("cc-l0")

        def app(mpi):
            if mpi.rank == 0:
                mpi.COMM_WORLD.send(b"x" * 1_000_000, dest=1, tag=0)
            else:
                mpi.COMM_WORLD.recv(source=0, tag=0)

        engine.at(0.002, lambda: engine.set_availability(link, 0.25))
        result = smpirun(app, 2, platform, engine=engine,
                         config=SmpiConfig(tracing=True))
        timeline = result.trace.timeline
        assert timeline.capacity_steps("cc-l0")
        loaded = Tracer.from_csv(result.trace.to_csv())
        assert (loaded.timeline.capacity_series
                == timeline.capacity_series)
