"""Tests for the reference testbed (the 'real cluster' stand-in)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.platforms import gdx, gdx_distant_pair, gdx_same_switch_pair, griffon
from repro.refcluster import (
    MPICH2,
    OPENMPI,
    run_pingpong_campaign,
    run_reference,
)
from repro.refcluster.skampi import default_sizes


class TestImplementations:
    def test_presets_differ(self):
        assert OPENMPI.send_overhead < MPICH2.send_overhead
        assert OPENMPI.config().eager_threshold == 64 * 1024

    def test_config_overrides(self):
        cfg = OPENMPI.config(eager_threshold=1024)
        assert cfg.eager_threshold == 1024
        assert cfg.send_overhead == OPENMPI.send_overhead


class TestPlatforms:
    def test_griffon_structure(self):
        platform = griffon()
        assert len(platform.hosts) == 92
        # intra-cabinet: 1 switch; inter-cabinet: 3 switches (paper)
        intra = platform.route("griffon-0", "griffon-1")
        assert len(intra.links) == 3
        inter = platform.route("griffon-0", "griffon-91")
        assert len(inter.links) == 7

    def test_griffon_truncation(self):
        platform = griffon(21)
        assert len(platform.hosts) == 21
        with pytest.raises(ValueError):
            griffon(93)

    def test_gdx_structure(self):
        platform = gdx()
        assert len(platform.hosts) == 312
        a, b = gdx_same_switch_pair()
        assert len(platform.route(a, b).links) == 3
        a, b = gdx_distant_pair()
        assert len(platform.route(a, b).links) == 7  # 3 switches on the path

    def test_gdx_uplinks_are_1g(self):
        platform = gdx()
        a, b = gdx_distant_pair()
        route = platform.route(a, b)
        # bottleneck is the 1 GbE uplink: 125 MB/s
        assert route.bandwidth == pytest.approx(125e6)


class TestPingPong:
    def test_campaign_is_reproducible_per_seed(self):
        platform = griffon(2)
        sizes = [1, 1000, 100_000]
        a = run_pingpong_campaign(platform, "griffon-0", "griffon-1",
                                  sizes=sizes, seed=3)
        b = run_pingpong_campaign(griffon(2), "griffon-0", "griffon-1",
                                  sizes=sizes, seed=3)
        np.testing.assert_array_equal(a.times, b.times)
        c = run_pingpong_campaign(griffon(2), "griffon-0", "griffon-1",
                                  sizes=sizes, seed=4)
        assert not np.array_equal(a.times, c.times)

    def test_times_increase_with_size(self):
        campaign = run_pingpong_campaign(
            griffon(2), "griffon-0", "griffon-1",
            sizes=[1, 1000, 100_000, 1_000_000], noise=0.0,
        )
        assert (np.diff(campaign.times) > 0).all()

    def test_implementations_produce_different_times(self):
        sizes = [10_000]
        a = run_pingpong_campaign(griffon(2), "griffon-0", "griffon-1",
                                  OPENMPI, sizes=sizes, noise=0.0)
        b = run_pingpong_campaign(griffon(2), "griffon-0", "griffon-1",
                                  MPICH2, sizes=sizes, noise=0.0)
        assert a.times[0] != b.times[0]
        assert abs(a.times[0] - b.times[0]) / a.times[0] < 0.25  # but close

    def test_distant_pair_slower_than_same_switch(self):
        platform = gdx(40)
        near = run_pingpong_campaign(platform, "gdx-0", "gdx-1",
                                     sizes=[1], noise=0.0)
        # use a pair crossing 3 switches within the truncated platform
        far = run_pingpong_campaign(gdx(40), "gdx-0", "gdx-30",
                                    sizes=[1], noise=0.0)
        assert far.times[0] > near.times[0]

    def test_default_sizes_cover_range(self):
        sizes = default_sizes()
        assert sizes[0] == 1
        assert sizes[-1] == 16 * 1024 * 1024
        assert 65536 in sizes and 1460 in sizes

    def test_table_renders(self):
        campaign = run_pingpong_campaign(griffon(2), "griffon-0", "griffon-1",
                                         sizes=[1, 100], noise=0.0)
        table = campaign.table()
        assert "one_way_us" in table and "OpenMPI" in table


class TestRunReference:
    def test_runs_arbitrary_apps(self):
        def app(mpi):
            out = np.zeros(1)
            mpi.COMM_WORLD.Allreduce(np.array([1.0]), out)
            return out[0]

        result = run_reference(app, 4, griffon(4), noise=0.0)
        assert result.returns == [4.0] * 4

    def test_noise_zero_is_deterministic(self):
        def app(mpi):
            comm = mpi.COMM_WORLD
            if mpi.rank == 0:
                comm.Send(np.zeros(50_000, dtype=np.uint8), 1, 0)
            else:
                comm.Recv(np.zeros(50_000, dtype=np.uint8), 0, 0)
            return mpi.wtime()

        a = run_reference(app, 2, griffon(2), noise=0.0)
        b = run_reference(app, 2, griffon(2), noise=0.0)
        assert a.simulated_time == b.simulated_time
