"""Tests for the constant-memory scale path (ISSUE 8).

Covers the three tentpole layers plus their satellites:

* rank-state interning — ``InternPool`` refcounting, payload folding in
  the protocol, ``SharedHeap`` refcount semantics, the enforcement
  error's rank/shared breakdown;
* streaming trace sinks — byte-identity with the in-memory exporters
  (CSV, Paje, TI) and the bounded open-window invariant;
* engine snapshot/restore — bit-identical continuation (test_snapshot.py
  holds the fuzz; the basics live here).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import MpiError, OutOfMemoryError
from repro.offline import record_trace, record_trace_streaming, replay_trace
from repro.smpi import SmpiConfig, smpirun
from repro.smpi.intern import InternPool, intern_meta, payload_key
from repro.smpi.memory import MemoryTracker
from repro.surf import cluster
from repro.trace import CsvStreamSink, PajeStreamSink, Tracer, export_paje


def traffic_app(mpi):
    """Deterministic mix of compute and eager/rendezvous traffic."""
    comm = mpi.COMM_WORLD
    rank, size = mpi.rank, mpi.size
    mpi.execute(1e7 * (1 + rank))
    comm.sendrecv(b"p" * 150_000, (rank + 1) % size,
                  source=(rank - 1) % size)
    mpi.execute(5e6)
    comm.sendrecv(b"q" * 64, (rank + 1) % size,
                  source=(rank - 1) % size)
    comm.barrier()


class TestInternPool:
    def test_acquire_release_refcount(self):
        pool = InternPool()
        a = pool.acquire("k", lambda: [1, 2], 100)
        b = pool.acquire("k", lambda: [9, 9], 100)  # factory not called
        assert a is b
        assert pool.refcount("k") == 2
        assert pool.naive_bytes == 200 and pool.stored_bytes == 100
        assert pool.saved_bytes == 100
        assert not pool.release("k")
        assert pool.refcount("k") == 1
        assert pool.release("k")  # last ref evicts
        assert pool.refcount("k") == 0
        assert len(pool) == 0
        assert pool.naive_bytes == 0 and pool.stored_bytes == 0

    def test_release_unknown_key_is_idempotent(self):
        pool = InternPool()
        assert not pool.release("never-seen")

    def test_key_reuse_after_eviction(self):
        pool = InternPool()
        first = pool.acquire("k", lambda: object(), 10)
        pool.release("k")
        second = pool.acquire("k", lambda: object(), 10)
        assert first is not second  # evicted entries rebuild
        assert pool.hits == 0 and pool.acquires == 2

    def test_accounting_callback(self):
        seen = []
        pool = InternPool(on_account=lambda n, s: seen.append((n, s)))
        pool.acquire("k", lambda: None, 7)
        pool.acquire("k", lambda: None, 7)
        pool.release("k")
        pool.release("k")
        assert seen == [(7, 7), (7, 0), (-7, 0), (-7, 0), (0, -7)]

    def test_payload_key_collision_resistance(self):
        a = np.frombuffer(b"hello world", dtype=np.uint8)
        b = np.frombuffer(b"hello worle", dtype=np.uint8)
        assert payload_key(a) != payload_key(b)
        assert payload_key(a) == payload_key(a.copy())

    def test_intern_meta_folds_identical_tuples(self):
        t1 = intern_meta("send", 7, 0, 1024)
        t2 = intern_meta("send", 7, 0, 1024)
        assert t1 is t2


class TestSharedHeapRefcounting:
    def _world(self, n=4):
        platform = cluster("shr", 2)
        from repro.smpi.runtime import SmpiWorld
        return SmpiWorld(platform, n)

    def test_key_reuse_across_churn(self):
        world = self._world()
        heap = world.heap
        a = heap.shared_malloc("blk", 8, dtype=np.uint8)
        b = heap.shared_malloc("blk", 8, dtype=np.uint8)
        assert a is b
        assert heap.shared_refcount("blk") == 2
        heap.shared_free("blk")
        assert heap.shared_refcount("blk") == 1
        heap.shared_free("blk")
        assert heap.shared_refcount("blk") == 0
        # the key is reusable after full release, with a fresh array
        c = heap.shared_malloc("blk", 16, dtype=np.uint8)
        assert c is not a and c.nbytes == 16
        assert heap.shared_refcount("blk") == 1

    def test_double_free_raises(self):
        world = self._world()
        heap = world.heap
        heap.shared_malloc("blk", 8, dtype=np.uint8)
        heap.shared_free("blk")
        with pytest.raises(MpiError):
            heap.shared_free("blk")  # refcount already zero: block gone

    def test_shared_bytes_accounting_across_churn(self):
        world = self._world()
        tracker = world.memory
        heap = world.heap
        base = tracker._shared_current
        for _ in range(3):  # allocate/free cycles must not leak
            heap.shared_malloc("w", 1024, dtype=np.uint8)
            heap.shared_malloc("w", 1024, dtype=np.uint8)
            assert tracker._shared_current == base + 1024  # folded once
            heap.shared_free("w")
            heap.shared_free("w")
            assert tracker._shared_current == base
        report = tracker.report()
        # two refs of 1 KiB fold to one stored KiB at the naive peak
        assert report.intern_naive_peak >= 2048
        assert report.intern_stored_peak <= report.intern_naive_peak

    def test_oom_error_names_rank_and_breakdown(self):
        tracker = MemoryTracker(2, limit=200 * 1024, enforce=True)
        tracker.allocate(0, 50 * 1024)
        with pytest.raises(OutOfMemoryError) as err:
            tracker.allocate(1, 512 * 1024)
        message = str(err.value)
        assert "rank 1" in message
        assert err.value.rank == 1
        assert err.value.rank_bytes is not None
        assert err.value.shared_bytes == 0


class TestPayloadInterning:
    def test_identical_payloads_fold(self):
        """All ranks sending the same bytes store one interned copy."""
        def app(mpi):
            comm = mpi.COMM_WORLD
            comm.sendrecv(b"z" * 10_000, (mpi.rank + 1) % mpi.size,
                          source=(mpi.rank - 1) % mpi.size)

        platform = cluster("fold", 8)
        result = smpirun(app, 8, platform)
        interning = result.stats.extra["interning"]
        payload = interning["payload"]
        assert payload["hits"] >= 7  # 8 identical payloads, 1 stored
        assert interning["naive_peak_bytes"] > interning["stored_peak_bytes"]

    def test_interning_can_be_disabled(self):
        def app(mpi):
            comm = mpi.COMM_WORLD
            comm.sendrecv(b"z" * 10_000, (mpi.rank + 1) % mpi.size,
                          source=(mpi.rank - 1) % mpi.size)

        platform = cluster("fold", 4)
        config = SmpiConfig(payload_interning=False)
        result = smpirun(app, 4, platform, config=config)
        payload = result.stats.extra.get(
            "interning", {}).get("payload", {"hits": 0})
        assert payload["hits"] == 0

    def test_frozen_payloads_reject_writes(self):
        world_pool = InternPool()

        def freeze():
            arr = np.ones(4, dtype=np.uint8)
            arr.flags.writeable = False
            return arr

        arr = world_pool.acquire(("k",), freeze, 4)
        with pytest.raises(ValueError):
            arr[0] = 9


class TestStreamingSinks:
    N = 4

    def _platform(self):
        return cluster("snk", self.N)

    def _config(self):
        return SmpiConfig(tracing=True)

    def test_csv_sink_byte_identical(self, tmp_path):
        reference = smpirun(traffic_app, self.N, self._platform(),
                            config=self._config())
        expected = reference.trace.to_csv()

        out = tmp_path / "run.csv"
        sink = CsvStreamSink(out, high_water=4)  # force mid-run flushes
        streamed = smpirun(traffic_app, self.N, self._platform(),
                           config=self._config(), trace_sink=sink)
        assert out.read_text(encoding="utf-8") == expected
        # spill side files are cleaned up
        assert list(tmp_path.iterdir()) == [out]
        assert streamed.trace.n_comm_records == len(reference.trace.comms)
        assert streamed.trace.n_compute_records == len(
            reference.trace.computes)

    def test_streaming_keeps_window_bounded(self, tmp_path):
        out = tmp_path / "run.csv"
        sink = CsvStreamSink(out, high_water=2)
        result = smpirun(traffic_app, self.N, self._platform(),
                         config=self._config(), trace_sink=sink)
        tracer = result.trace
        # in-memory lists never accumulated the whole run
        assert tracer.comms == []
        assert tracer.computes == []
        assert len(tracer._comm_window) == 0

    def test_paje_sink_byte_identical(self, tmp_path):
        reference = smpirun(traffic_app, self.N, self._platform(),
                            config=self._config())
        expected = export_paje(reference.trace, self.N,
                               timeline=reference.trace.timeline)

        out = tmp_path / "run.paje"
        sink = PajeStreamSink(out, self.N, high_water=4)
        smpirun(traffic_app, self.N, self._platform(),
                config=self._config(), trace_sink=sink)
        assert out.read_text(encoding="utf-8") == expected
        assert list(tmp_path.iterdir()) == [out]

    def test_ti_streaming_byte_identical(self, tmp_path):
        platform = self._platform()
        _result, trace = record_trace(traffic_app, self.N, platform)
        expected_path = tmp_path / "mem.json"
        trace.save(expected_path)

        streamed_path = tmp_path / "stream.json"
        record_trace_streaming(traffic_app, self.N, self._platform(),
                               streamed_path, high_water=3)
        assert (streamed_path.read_bytes() == expected_path.read_bytes())

    def test_replay_with_csv_sink_matches_replay_export(self, tmp_path):
        platform = self._platform()
        _result, trace = record_trace(traffic_app, self.N, platform)

        ref = replay_trace(trace, self._platform(),
                           config=SmpiConfig(tracing=True))
        expected = ref.trace.to_csv()

        out = tmp_path / "replay.csv"
        streamed = replay_trace(trace, self._platform(),
                                config=SmpiConfig(tracing=True),
                                trace_sink=CsvStreamSink(out, high_water=4))
        assert out.read_text(encoding="utf-8") == expected
        assert streamed.simulated_time == ref.simulated_time

    def test_csv_sink_round_trips_through_loader(self, tmp_path):
        out = tmp_path / "run.csv"
        smpirun(traffic_app, self.N, self._platform(),
                config=self._config(),
                trace_sink=CsvStreamSink(out, high_water=4))
        loaded = Tracer.load(out)
        assert len(loaded.comms) > 0
        assert len(loaded.computes) > 0
        assert loaded.timeline is not None
