"""Tests for model calibration: segmented fits, affine instantiations."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.calibration import (
    calibrate_all,
    fit_affine_best,
    fit_affine_default,
    fit_segments,
)
from repro.calibration.calibrate import replay_config
from repro.errors import CalibrationError
from repro.smpi import SmpiConfig
from repro.surf.network_model import RouteParams

ROUTE = RouteParams(latency=1e-4, bandwidth=125e6)


def synthetic_piecewise(sizes, boundaries=(1500.0, 65536.0),
                        alphas=(1e-4, 1.3e-4, 4e-4),
                        betas=(50e6, 80e6, 118e6)):
    """Ground-truth 3-segment data."""
    sizes = np.asarray(sizes, dtype=float)
    times = np.empty_like(sizes)
    for i, s in enumerate(sizes):
        seg = 0 if s < boundaries[0] else (1 if s < boundaries[1] else 2)
        times[i] = alphas[seg] + s / betas[seg]
    return times


def log_sizes(n=40, max_size=16 * 2**20):
    return np.unique(np.round(np.logspace(0, np.log10(max_size), n))).astype(float)


class TestSegmentedFit:
    def test_recovers_exact_piecewise_data(self):
        sizes = log_sizes()
        times = synthetic_piecewise(sizes)
        segments = fit_segments(sizes, times, n_segments=3)
        assert len(segments) == 3
        # boundaries land between the true ones' neighbouring samples
        assert 1000 < segments[0].hi < 3000
        assert 30000 < segments[1].hi < 120000
        # recovered parameters close to ground truth
        assert segments[0].alpha == pytest.approx(1e-4, rel=0.1)
        assert segments[2].beta == pytest.approx(118e6, rel=0.1)
        for seg in segments:
            assert seg.correlation > 0.999

    def test_single_segment_is_plain_regression(self):
        sizes = np.linspace(1, 1e6, 30)
        times = 2e-4 + sizes / 100e6
        (segment,) = fit_segments(sizes, times, n_segments=1)
        assert segment.alpha == pytest.approx(2e-4, rel=1e-6)
        assert segment.beta == pytest.approx(100e6, rel=1e-6)
        assert segment.lo == 0 and math.isinf(segment.hi)

    def test_two_segments(self):
        sizes = log_sizes()
        times = synthetic_piecewise(sizes, boundaries=(65536.0, math.inf),
                                    alphas=(1e-4, 4e-4, 4e-4),
                                    betas=(60e6, 118e6, 118e6))
        segments = fit_segments(sizes, times, n_segments=2)
        assert len(segments) == 2
        assert 30000 < segments[0].hi < 130000

    def test_coverage_is_contiguous_zero_to_inf(self):
        sizes = log_sizes()
        times = synthetic_piecewise(sizes)
        segments = fit_segments(sizes, times, n_segments=3)
        assert segments[0].lo == 0.0
        assert math.isinf(segments[-1].hi)
        for left, right in zip(segments, segments[1:]):
            assert left.hi == right.lo

    def test_too_few_points_raises(self):
        with pytest.raises(CalibrationError):
            fit_segments([1, 2, 3], [1.0, 2.0, 3.0], n_segments=3)

    def test_shape_mismatch_raises(self):
        with pytest.raises(CalibrationError):
            fit_segments([1, 2, 3, 4], [1.0, 2.0], n_segments=1)

    def test_noisy_data_still_three_segments(self):
        rng = np.random.default_rng(5)
        sizes = log_sizes()
        times = synthetic_piecewise(sizes) * np.exp(rng.normal(0, 0.02, sizes.size))
        segments = fit_segments(sizes, times, n_segments=3)
        assert len(segments) == 3
        assert all(seg.beta > 0 for seg in segments)

    @given(st.integers(1, 4))
    @settings(max_examples=12, deadline=None)
    def test_prediction_positive_everywhere(self, k):
        sizes = log_sizes()
        times = synthetic_piecewise(sizes)
        segments = fit_segments(sizes, times, n_segments=k)
        for seg in segments:
            for s in (seg.lo, min(seg.hi, 1e9)):
                assert seg.predict(max(s, 1.0)) > 0


class TestAffine:
    def test_default_uses_one_byte_latency_and_92pct_peak(self):
        sizes = np.array([1.0, 1000.0, 1e6])
        times = np.array([1.2e-4, 2e-4, 8.5e-3])
        model = fit_affine_default(sizes, times, ROUTE)
        assert model.alpha == pytest.approx(1.2e-4)
        assert model.beta == pytest.approx(0.92 * 125e6)

    def test_best_fit_beats_default_on_curved_data(self):
        sizes = log_sizes()
        times = synthetic_piecewise(sizes)
        default = fit_affine_default(sizes, times, ROUTE)
        best = fit_affine_best(sizes, times, ROUTE)

        def mean_log_err(model):
            predicted = np.array([model.predict_time(s, ROUTE) for s in sizes])
            return np.abs(np.log(predicted) - np.log(times)).mean()

        assert mean_log_err(best) <= mean_log_err(default) + 1e-9

    def test_best_fit_recovers_truly_affine_data(self):
        sizes = log_sizes()
        times = 3e-4 + sizes / 90e6
        model = fit_affine_best(sizes, times, ROUTE)
        assert model.alpha == pytest.approx(3e-4, rel=0.05)
        assert model.beta == pytest.approx(90e6, rel=0.05)

    def test_empty_measurements_raise(self):
        with pytest.raises(CalibrationError):
            fit_affine_default([], [], ROUTE)
        with pytest.raises(CalibrationError):
            fit_affine_best([1, 2], [1.0, 2.0], ROUTE)


class TestCalibrateAll:
    def test_bundle_has_three_models(self):
        sizes = log_sizes()
        times = synthetic_piecewise(sizes)
        models = calibrate_all(sizes, times, ROUTE)
        assert models.piecewise.parameter_count == 8
        assert models.default_affine.name == "default-affine"
        pw = models.predict("piecewise", sizes)
        np.testing.assert_allclose(pw, times, rtol=0.05)

    def test_piecewise_most_accurate_on_piecewise_truth(self):
        sizes = log_sizes()
        times = synthetic_piecewise(sizes)
        models = calibrate_all(sizes, times, ROUTE)

        def err(name):
            predicted = models.predict(name, sizes)
            return np.abs(np.log(predicted) - np.log(times)).mean()

        assert err("piecewise") < err("best_fit_affine") <= err("default_affine") + 1e-9

    def test_replay_config_zeroes_protocol_extras(self):
        base = SmpiConfig(send_overhead=1e-5, handshake_rtts=2.0,
                          eager_copy_bandwidth=1e8)
        cfg = replay_config(base)
        assert cfg.send_overhead == 0.0
        assert cfg.recv_overhead == 0.0
        assert cfg.handshake_rtts == 0.0
        assert math.isinf(cfg.eager_copy_bandwidth)
        assert cfg.eager_threshold == base.eager_threshold  # semantics kept
