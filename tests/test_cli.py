"""Tests for the command-line launcher."""

from __future__ import annotations

import pytest

from repro.cli import build_platform, load_app, main
from repro.errors import ConfigError

APP_SOURCE = '''
import numpy as np

def app(mpi):
    out = np.zeros(1)
    mpi.COMM_WORLD.Allreduce(np.array([1.0]), out)
    return float(out[0])

def other_entry(mpi):
    return "other"
'''


@pytest.fixture
def app_file(tmp_path):
    path = tmp_path / "cli_app.py"
    path.write_text(APP_SOURCE)
    return str(path)


class TestBuildPlatform:
    def test_builtin_names(self):
        assert len(build_platform("griffon", 4).hosts) == 4
        assert len(build_platform("gdx", 10).hosts) == 10

    def test_cluster_spec(self):
        platform = build_platform("cluster:6", 6)
        assert len(platform.hosts) == 6
        custom = build_platform("cluster:2:1.25GBps:10us", 2)
        route = custom.route(custom.host_names()[0], custom.host_names()[1])
        assert route.bandwidth == pytest.approx(1.25e9)

    def test_bad_cluster_spec(self):
        with pytest.raises(ConfigError):
            build_platform("cluster:", 2)
        with pytest.raises(ConfigError):
            build_platform("cluster:2:a:b:c:d", 2)

    def test_xml_file(self, tmp_path):
        from repro.surf import cluster, save_platform_xml

        path = tmp_path / "p.xml"
        save_platform_xml(cluster("x", 3), path)
        platform = build_platform(str(path), 3)
        assert len(platform.hosts) == 3

    def test_unknown_spec(self):
        with pytest.raises(ConfigError):
            build_platform("the-cloud", 4)


class TestLoadApp:
    def test_loads_default_entry(self, app_file):
        assert callable(load_app(app_file))

    def test_loads_custom_entry(self, app_file):
        assert load_app(app_file, "other_entry")(None) == "other"

    def test_missing_file(self):
        with pytest.raises(ConfigError):
            load_app("/nonexistent/app.py")

    def test_missing_entry(self, app_file):
        with pytest.raises(ConfigError):
            load_app(app_file, "no_such_function")


class TestCommands:
    def test_run(self, app_file, capsys):
        assert main(["run", app_file, "-n", "4", "--platform", "cluster:4"]) == 0
        out = capsys.readouterr().out
        assert "simulated time" in out
        assert "[4.0, 4.0, 4.0, 4.0]" in out

    def test_run_with_options(self, app_file, capsys):
        code = main([
            "run", app_file, "-n", "4", "--platform", "cluster:4",
            "--eager-threshold", "1KiB", "--coll", "allreduce=reduce_bcast",
        ])
        assert code == 0

    def test_record_and_replay_and_info(self, app_file, tmp_path, capsys):
        trace_path = str(tmp_path / "t.json")
        assert main(["run", app_file, "-n", "2", "--platform", "cluster:2",
                     "--record", trace_path]) == 0
        run_out = capsys.readouterr().out
        assert "trace written" in run_out

        assert main(["info", trace_path]) == 0
        info_out = capsys.readouterr().out
        assert "TI trace: 2 ranks" in info_out

        assert main(["replay", trace_path, "--platform", "cluster:2"]) == 0
        replay_out = capsys.readouterr().out
        assert "replaying" in replay_out

    def test_replay_reproduces_recorded_time(self, app_file, tmp_path, capsys):
        trace_path = str(tmp_path / "t.json")
        main(["run", app_file, "-n", "2", "--platform", "cluster:2",
              "--record", trace_path])
        recorded = capsys.readouterr().out
        main(["replay", trace_path, "--platform", "cluster:2"])
        replayed = capsys.readouterr().out
        line = next(l for l in recorded.splitlines() if "simulated" in l)
        line2 = next(l for l in replayed.splitlines()
                     if l.startswith("simulated"))
        assert line.split(":")[1] == line2.split(":")[1]

    def test_platforms_listing(self, capsys):
        assert main(["platforms"]) == 0
        assert "griffon" in capsys.readouterr().out

    def test_error_exit_code(self, capsys):
        assert main(["run", "/nope.py", "-n", "2"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_coll_option_validation(self, app_file, capsys):
        assert main(["run", app_file, "-n", "2", "--platform", "cluster:2",
                     "--coll", "not-a-pair"]) == 2


class TestStatsFlag:
    def test_run_prints_kernel_stats(self, app_file, capsys):
        assert main(["run", app_file, "-n", "4", "--platform", "cluster:4",
                     "--stats"]) == 0
        out = capsys.readouterr().out
        assert "kernel stats" in out
        assert "flows resolved" in out
        assert "partial shares" in out
        assert "components solved" in out

    def test_full_reshare_same_simulated_time(self, app_file, capsys):
        main(["run", app_file, "-n", "4", "--platform", "cluster:4"])
        default_out = capsys.readouterr().out
        main(["run", app_file, "-n", "4", "--platform", "cluster:4",
              "--full-reshare"])
        full_out = capsys.readouterr().out
        pick = lambda out: next(l for l in out.splitlines()
                                if l.startswith("simulated"))
        assert pick(default_out) == pick(full_out)

    def test_replay_accepts_stats(self, app_file, tmp_path, capsys):
        trace_path = str(tmp_path / "t.json")
        main(["run", app_file, "-n", "2", "--platform", "cluster:2",
              "--record", trace_path])
        capsys.readouterr()
        assert main(["replay", trace_path, "--platform", "cluster:2",
                     "--stats"]) == 0
        assert "kernel stats" in capsys.readouterr().out
