"""Tests for the command-line launcher."""

from __future__ import annotations

import os

import pytest

from repro.cli import build_platform, load_app, main
from repro.errors import ConfigError

APP_SOURCE = '''
import numpy as np

def app(mpi):
    out = np.zeros(1)
    mpi.COMM_WORLD.Allreduce(np.array([1.0]), out)
    return float(out[0])

def other_entry(mpi):
    return "other"
'''

PINGPONG_SOURCE = '''
import numpy as np

def app(mpi):
    comm = mpi.COMM_WORLD
    buf = np.zeros(65536, dtype=np.uint8)
    for rep in range(4):
        if mpi.rank == 0:
            comm.Send(buf, dest=1, tag=rep)
            comm.Recv(buf, source=1, tag=rep)
        else:
            comm.Recv(buf, source=0, tag=rep)
            comm.Send(buf, dest=0, tag=rep)
    return mpi.rank
'''


@pytest.fixture
def app_file(tmp_path):
    path = tmp_path / "cli_app.py"
    path.write_text(APP_SOURCE)
    return str(path)


class TestBuildPlatform:
    def test_builtin_names(self):
        assert len(build_platform("griffon", 4).hosts) == 4
        assert len(build_platform("gdx", 10).hosts) == 10

    def test_cluster_spec(self):
        platform = build_platform("cluster:6", 6)
        assert len(platform.hosts) == 6
        custom = build_platform("cluster:2:1.25GBps:10us", 2)
        route = custom.route(custom.host_names()[0], custom.host_names()[1])
        assert route.bandwidth == pytest.approx(1.25e9)

    def test_bad_cluster_spec(self):
        with pytest.raises(ConfigError):
            build_platform("cluster:", 2)
        with pytest.raises(ConfigError):
            build_platform("cluster:2:a:b:c:d", 2)

    def test_xml_file(self, tmp_path):
        from repro.surf import cluster, save_platform_xml

        path = tmp_path / "p.xml"
        save_platform_xml(cluster("x", 3), path)
        platform = build_platform(str(path), 3)
        assert len(platform.hosts) == 3

    def test_unknown_spec(self):
        with pytest.raises(ConfigError):
            build_platform("the-cloud", 4)


class TestLoadApp:
    def test_loads_default_entry(self, app_file):
        assert callable(load_app(app_file))

    def test_loads_custom_entry(self, app_file):
        assert load_app(app_file, "other_entry")(None) == "other"

    def test_missing_file(self):
        with pytest.raises(ConfigError):
            load_app("/nonexistent/app.py")

    def test_missing_entry(self, app_file):
        with pytest.raises(ConfigError):
            load_app(app_file, "no_such_function")


class TestCommands:
    def test_run(self, app_file, capsys):
        assert main(["run", app_file, "-n", "4", "--platform", "cluster:4"]) == 0
        out = capsys.readouterr().out
        assert "simulated time" in out
        assert "[4.0, 4.0, 4.0, 4.0]" in out

    def test_run_with_options(self, app_file, capsys):
        code = main([
            "run", app_file, "-n", "4", "--platform", "cluster:4",
            "--eager-threshold", "1KiB", "--coll", "allreduce=reduce_bcast",
        ])
        assert code == 0

    def test_record_and_replay_and_info(self, app_file, tmp_path, capsys):
        trace_path = str(tmp_path / "t.json")
        assert main(["run", app_file, "-n", "2", "--platform", "cluster:2",
                     "--record", trace_path]) == 0
        run_out = capsys.readouterr().out
        assert "trace written" in run_out

        assert main(["info", trace_path]) == 0
        info_out = capsys.readouterr().out
        assert "TI trace: 2 ranks" in info_out

        assert main(["replay", trace_path, "--platform", "cluster:2"]) == 0
        replay_out = capsys.readouterr().out
        assert "replaying" in replay_out

    def test_replay_reproduces_recorded_time(self, app_file, tmp_path, capsys):
        trace_path = str(tmp_path / "t.json")
        main(["run", app_file, "-n", "2", "--platform", "cluster:2",
              "--record", trace_path])
        recorded = capsys.readouterr().out
        main(["replay", trace_path, "--platform", "cluster:2"])
        replayed = capsys.readouterr().out
        line = next(l for l in recorded.splitlines() if "simulated" in l)
        line2 = next(l for l in replayed.splitlines()
                     if l.startswith("simulated"))
        assert line.split(":")[1] == line2.split(":")[1]

    def test_replay_checkpoint_and_resume(self, tmp_path, capsys):
        app_path = tmp_path / "pingpong.py"
        app_path.write_text(PINGPONG_SOURCE)
        trace_path = str(tmp_path / "t.json")
        main(["run", str(app_path), "-n", "2", "--platform", "cluster:2",
              "--record", trace_path])
        recorded = capsys.readouterr().out
        line = next(l for l in recorded.splitlines() if "simulated" in l)
        value, unit = line.split(":")[1].split()
        total = float(value) * {"s": 1.0, "ms": 1e-3, "us": 1e-6,
                                "ns": 1e-9}[unit]

        ckpt_path = str(tmp_path / "t.ckpt.json")
        assert main(["replay", trace_path, "--platform", "cluster:2",
                     "--checkpoint-at", str(total / 2),
                     "--checkpoint-out", ckpt_path]) == 0
        ckpt_out = capsys.readouterr().out
        assert "checkpoint" in ckpt_out
        assert os.path.exists(ckpt_path)

        assert main(["replay", trace_path, "--platform", "cluster:2",
                     "--resume-from", ckpt_path]) == 0
        resumed = capsys.readouterr().out
        assert "resumed from" in resumed
        line2 = next(l for l in resumed.splitlines()
                     if l.startswith("simulated"))
        assert line.split(":")[1] == line2.split(":")[1]

    def test_replay_rejects_checkpoint_with_resume(self, app_file, tmp_path,
                                                   capsys):
        trace_path = str(tmp_path / "t.json")
        main(["run", app_file, "-n", "2", "--platform", "cluster:2",
              "--record", trace_path])
        capsys.readouterr()
        assert main(["replay", trace_path, "--platform", "cluster:2",
                     "--checkpoint-at", "0.001",
                     "--resume-from", trace_path]) != 0

    def test_platforms_listing(self, capsys):
        assert main(["platforms"]) == 0
        assert "griffon" in capsys.readouterr().out

    def test_error_exit_code(self, capsys):
        assert main(["run", "/nope.py", "-n", "2"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_coll_option_validation(self, app_file, capsys):
        assert main(["run", app_file, "-n", "2", "--platform", "cluster:2",
                     "--coll", "not-a-pair"]) == 2


class TestStatsFlag:
    def test_run_prints_kernel_stats(self, app_file, capsys):
        assert main(["run", app_file, "-n", "4", "--platform", "cluster:4",
                     "--stats"]) == 0
        out = capsys.readouterr().out
        assert "kernel stats" in out
        assert "flows resolved" in out
        assert "partial shares" in out
        assert "components solved" in out

    def test_full_reshare_same_simulated_time(self, app_file, capsys):
        main(["run", app_file, "-n", "4", "--platform", "cluster:4"])
        default_out = capsys.readouterr().out
        main(["run", app_file, "-n", "4", "--platform", "cluster:4",
              "--full-reshare"])
        full_out = capsys.readouterr().out
        pick = lambda out: next(l for l in out.splitlines()
                                if l.startswith("simulated"))
        assert pick(default_out) == pick(full_out)

    def test_replay_accepts_stats(self, app_file, tmp_path, capsys):
        trace_path = str(tmp_path / "t.json")
        main(["run", app_file, "-n", "2", "--platform", "cluster:2",
              "--record", trace_path])
        capsys.readouterr()
        assert main(["replay", trace_path, "--platform", "cluster:2",
                     "--stats"]) == 0
        assert "kernel stats" in capsys.readouterr().out


class TestTraceCommands:
    @pytest.fixture
    def csv_trace(self, app_file, tmp_path, capsys):
        path = str(tmp_path / "run.csv")
        assert main(["run", app_file, "-n", "4", "--platform", "cluster:4",
                     "--trace", path]) == 0
        capsys.readouterr()
        return path

    def test_run_exports_csv(self, csv_trace):
        content = open(csv_trace).read()
        assert content.startswith("kind,mid")
        assert "comm," in content and "link," in content

    def test_run_exports_paje(self, app_file, tmp_path, capsys):
        path = str(tmp_path / "run.paje")
        assert main(["run", app_file, "-n", "4", "--platform", "cluster:4",
                     "--trace", path, "--trace-format", "paje"]) == 0
        assert open(path).read().startswith("%EventDef")
        assert main(["trace", "summary", path]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out and "top links" in out

    def test_run_exports_ti(self, app_file, tmp_path, capsys):
        path = str(tmp_path / "run.json")
        assert main(["run", app_file, "-n", "2", "--platform", "cluster:2",
                     "--trace", path, "--trace-format", "ti"]) == 0
        run_out = capsys.readouterr().out
        assert main(["replay", path, "--platform", "cluster:2"]) == 0
        replay_out = capsys.readouterr().out
        pick = lambda out: next(l for l in out.splitlines()
                                if l.startswith("simulated"))
        assert pick(run_out) == pick(replay_out)

    def test_summary(self, csv_trace, capsys):
        assert main(["trace", "summary", csv_trace]) == 0
        out = capsys.readouterr().out
        assert "rank activity" in out
        assert "computing" in out

    def test_gantt_ascii_and_svg(self, csv_trace, tmp_path, capsys):
        assert main(["trace", "gantt", csv_trace, "--width", "40",
                     "--critical"]) == 0
        out = capsys.readouterr().out
        assert "r0 |" in out and "*" in out
        svg_path = str(tmp_path / "g.svg")
        assert main(["trace", "gantt", csv_trace, "--svg", svg_path]) == 0
        assert open(svg_path).read().startswith("<svg")

    def test_critical_path(self, csv_trace, capsys):
        assert main(["trace", "critical-path", csv_trace]) == 0
        assert "critical path:" in capsys.readouterr().out

    def test_export_round_trip(self, csv_trace, tmp_path, capsys):
        paje_path = str(tmp_path / "out.paje")
        assert main(["trace", "export", csv_trace, "--format", "paje",
                     "-o", paje_path]) == 0
        back_path = str(tmp_path / "back.csv")
        assert main(["trace", "export", paje_path, "--format", "csv",
                     "-o", back_path]) == 0
        assert open(back_path).read().startswith("kind,mid")

    def test_ti_input_needs_platform(self, app_file, tmp_path, capsys):
        path = str(tmp_path / "run.json")
        main(["run", app_file, "-n", "2", "--platform", "cluster:2",
              "--record", path])
        capsys.readouterr()
        assert main(["trace", "summary", path]) == 2
        assert "--platform" in capsys.readouterr().err
        assert main(["trace", "summary", path,
                     "--platform", "cluster:2"]) == 0

    def test_replay_rejects_ti_reexport(self, app_file, tmp_path, capsys):
        path = str(tmp_path / "run.json")
        main(["run", app_file, "-n", "2", "--platform", "cluster:2",
              "--record", path])
        capsys.readouterr()
        assert main(["replay", path, "--platform", "cluster:2",
                     "--trace", str(tmp_path / "x.json"),
                     "--trace-format", "ti"]) == 2

    def test_replay_exports_trace(self, app_file, tmp_path, capsys):
        ti_path = str(tmp_path / "run.json")
        main(["run", app_file, "-n", "2", "--platform", "cluster:2",
              "--record", ti_path])
        capsys.readouterr()
        csv_path = str(tmp_path / "replay.csv")
        assert main(["replay", ti_path, "--platform", "cluster:2",
                     "--trace", csv_path]) == 0
        assert main(["trace", "summary", csv_path]) == 0
