"""Tests for the fat-tree and torus platform builders."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PlatformError
from repro.smpi import smpirun
from repro.surf import Engine, fat_tree, torus
from repro.surf.network_model import FactorsNetworkModel


class TestFatTree:
    def test_host_count(self):
        platform = fat_tree("ft", pods=4, down=8, up=4)
        assert len(platform.hosts) == 32

    def test_intra_pod_route_short(self):
        platform = fat_tree("ft", pods=2, down=4, up=2)
        route = platform.route("node-0", "node-3")  # same pod
        assert len(route.links) == 3

    def test_inter_pod_route_crosses_core(self):
        platform = fat_tree("ft", pods=2, down=4, up=2)
        route = platform.route("node-0", "node-5")
        assert len(route.links) == 6
        names = [l.name for l in route.links]
        assert any("up0" in n for n in names)
        assert any("up1" in n for n in names)

    def test_route_symmetric_core_choice(self):
        """Both directions of a pair use the same core switch."""
        platform = fat_tree("ft", pods=3, down=2, up=2)
        fwd = {l.name for l in platform.route("node-0", "node-5").links}
        rev = {l.name for l in platform.route("node-5", "node-0").links}
        assert fwd == rev

    def test_core_load_spread(self):
        """Different pairs hash to different cores (static multipathing)."""
        platform = fat_tree("ft", pods=2, down=4, up=2)
        cores_used = set()
        for i in range(4):
            for j in range(4, 8):
                for link in platform.route(f"node-{i}", f"node-{j}").links:
                    if "-up0-" in link.name:
                        cores_used.add(link.name.split("-c")[-1])
        assert len(cores_used) == 2

    def test_validation(self):
        with pytest.raises(PlatformError):
            fat_tree("ft", pods=0, down=1, up=1)

    def test_full_bisection_parallel_transfers(self):
        """With enough core capacity, disjoint inter-pod pairs don't slow
        each other down."""
        platform = fat_tree("ft", pods=2, down=2, up=2,
                            core_bandwidth="1.25GBps")
        engine = Engine(platform, network_model=FactorsNetworkModel(1.0, 1.0))
        a = engine.communicate("node-0", "node-2", 1_000_000)
        b = engine.communicate("node-1", "node-3", 1_000_000)
        engine.run()
        solo_engine = Engine(
            fat_tree("ft2", pods=2, down=2, up=2, core_bandwidth="1.25GBps"),
            network_model=FactorsNetworkModel(1.0, 1.0),
        )
        solo = solo_engine.communicate("node-0", "node-2", 1_000_000)
        solo_engine.run()
        assert a.finish_time == pytest.approx(solo.finish_time, rel=0.05)
        assert b.finish_time == pytest.approx(solo.finish_time, rel=0.05)


class TestTorus:
    def test_host_count(self):
        assert len(torus("t", [2, 3, 4]).hosts) == 24

    def test_neighbour_route_is_one_hop(self):
        platform = torus("t", [3, 3])
        assert len(platform.route("node-0", "node-1").links) == 1
        assert len(platform.route("node-0", "node-3").links) == 1

    def test_wraparound_is_short(self):
        platform = torus("t", [5])
        # 0 -> 4 wraps backwards: 1 hop, not 4
        assert len(platform.route("node-0", "node-4").links) == 1
        assert len(platform.route("node-0", "node-2").links) == 2

    def test_dimension_ordered_hop_count(self):
        platform = torus("t", [4, 4])
        # (0,0) -> (2,3): 2 hops in dim0 + 1 hop (wrap) in dim1
        route = platform.route("node-0", "node-11")
        assert len(route.links) == 3

    def test_route_latency_scales_with_hops(self):
        platform = torus("t", [8])
        one = platform.route("node-0", "node-1").latency
        four = platform.route("node-0", "node-4").latency
        assert four == pytest.approx(4 * one)

    def test_two_extent_dimension(self):
        platform = torus("t", [2, 2])
        for a in range(4):
            for b in range(4):
                if a != b:
                    assert len(platform.route(f"node-{a}", f"node-{b}").links) >= 1

    def test_neighbour_traffic_is_contention_free(self):
        """A shift pattern along a ring uses disjoint links."""
        platform = torus("t", [4])
        engine = Engine(platform, network_model=FactorsNetworkModel(1.0, 1.0))
        actions = [
            engine.communicate(f"node-{i}", f"node-{(i + 1) % 4}", 1_000_000)
            for i in range(4)
        ]
        engine.run()
        finish = {round(a.finish_time, 9) for a in actions}
        assert len(finish) == 1  # all equal: no shared links

    def test_validation(self):
        with pytest.raises(PlatformError):
            torus("t", [])
        with pytest.raises(PlatformError):
            torus("t", [0, 2])

    @given(st.lists(st.integers(1, 4), min_size=1, max_size=3))
    @settings(max_examples=15, deadline=None)
    def test_all_pairs_routable(self, dims):
        platform = torus("t", dims)
        names = platform.host_names()
        total = len(names)
        if total < 2:
            return
        # spot-check a handful of pairs for valid contiguous routes
        rng = np.random.default_rng(42)
        for _ in range(min(10, total * (total - 1))):
            a, b = rng.choice(total, size=2, replace=False)
            route = platform.route(names[a], names[b])
            manhattan_bound = sum(d // 2 for d in dims)
            assert 1 <= len(route.links) <= max(manhattan_bound, 1)


class TestMpiOnTopologies:
    def test_allreduce_on_fat_tree(self):
        platform = fat_tree("mft", pods=2, down=4, up=2)

        def app(mpi):
            out = np.zeros(1)
            mpi.COMM_WORLD.Allreduce(np.array([1.0]), out)
            return out[0]

        result = smpirun(app, 8, platform)
        assert result.returns == [8.0] * 8

    def test_ring_exchange_on_torus(self):
        platform = torus("mt", [6])

        def app(mpi):
            comm = mpi.COMM_WORLD
            out = np.zeros(1)
            comm.Sendrecv(np.array([float(mpi.rank)]), (mpi.rank + 1) % 6, 0,
                          out, (mpi.rank - 1) % 6, 0)
            return out[0]

        result = smpirun(app, 6, platform)
        assert result.returns == [5.0, 0.0, 1.0, 2.0, 3.0, 4.0]
