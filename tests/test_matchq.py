"""Indexed match queues vs the linear-scan oracle (queue level).

The indexed queues must be *observationally identical* to a front-to-back
scan: same item returned for every query, same iteration order, same
drain order — whatever mix of exact and wildcard traffic hits them.  The
fuzz tests here drive both families with identical random op sequences
and compare every result; the unit tests pin the mechanics (O(1) exact
buckets, head-seqno wildcard resolution, tombstone compaction, lazy
single-wildcard views).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.simix import (
    IndexedMessageQueue,
    IndexedRecvQueue,
    MatchCounters,
    ScanMessageQueue,
    ScanRecvQueue,
)

ANY = -1
_FUZZ = settings(max_examples=60, deadline=None)


def _envelope(item):
    return item[0], item[1]


def _mk_message_queues():
    return (IndexedMessageQueue("idx", _envelope),
            ScanMessageQueue("scan", _envelope))


def _mk_recv_queues():
    return (IndexedRecvQueue("idx", _envelope),
            ScanRecvQueue("scan", _envelope))


class TestMessageQueueUnit:
    def test_exact_match_is_fifo_per_envelope(self):
        q = IndexedMessageQueue("q", _envelope)
        q.push((1, 7, "a"))
        q.push((1, 7, "b"))
        q.push((2, 7, "c"))
        assert q.pop(1, 7) == (1, 7, "a")
        assert q.pop(1, 7) == (1, 7, "b")
        assert q.pop(1, 7) is None
        assert q.pop(2, 7) == (2, 7, "c")

    def test_wildcard_returns_globally_oldest(self):
        q = IndexedMessageQueue("q", _envelope)
        q.push((3, 0, "first"))
        q.push((1, 1, "second"))
        q.push((3, 1, "third"))
        assert q.pop(ANY, ANY) == (3, 0, "first")
        assert q.pop(ANY, 1) == (1, 1, "second")
        assert q.pop(3, ANY) == (3, 1, "third")
        assert not q

    def test_peek_does_not_remove(self):
        q = IndexedMessageQueue("q", _envelope)
        q.push((1, 2, "x"))
        assert q.peek(1, 2) == (1, 2, "x")
        assert q.peek(ANY, ANY) == (1, 2, "x")
        assert len(q) == 1
        assert q.pop(1, 2) == (1, 2, "x")

    def test_tombstones_compact_away(self):
        q = IndexedMessageQueue("q", _envelope)
        # build up a large dead population via wildcard pops, then push
        # once more: compaction triggers when dead > 64 and dead > live
        for i in range(200):
            q.push((i % 3, 0, i))
        for _ in range(199):
            assert q.pop(ANY, ANY) is not None
        q.push((0, 0, "tail"))
        assert q._dead == 0  # compacted
        assert list(q) == [(1, 0, 199), (0, 0, "tail")]

    def test_lazy_views_only_built_on_demand(self):
        q = IndexedMessageQueue("q", _envelope)
        q.push((1, 2, "x"))
        assert not q._src_indexed and not q._tag_indexed
        q.pop(1, ANY)  # source-pinned wildcard
        assert q._src_indexed and not q._tag_indexed

    def test_counters_classify_probe_kinds(self):
        stats = MatchCounters()
        q = IndexedMessageQueue("q", _envelope, stats=stats)
        q.push((1, 2, "x"))
        q.push((3, 4, "y"))
        q.pop(1, 2)           # exact hit
        q.pop(ANY, ANY)       # wildcard hit
        q.pop(5, 6)           # miss (still costs a probe)
        assert stats.match_fast_hits == 1
        assert stats.wildcard_scans == 1
        assert stats.match_probes >= 3

    def test_pop_if_scans_in_order(self):
        q = IndexedMessageQueue("q", _envelope)
        q.push((1, 0, "a"))
        q.push((2, 0, "b"))
        q.push((1, 0, "c"))
        assert q.pop_if(lambda m: m[0] == 2) == (2, 0, "b")
        assert list(q) == [(1, 0, "a"), (1, 0, "c")]


class TestRecvQueueUnit:
    def test_concrete_envelope_takes_oldest_of_four_buckets(self):
        q = IndexedRecvQueue("q", _envelope)
        q.push((ANY, ANY, "anyany"))
        q.push((1, ANY, "bysrc"))
        q.push((ANY, 2, "bytag"))
        q.push((1, 2, "exact"))
        # all four match (1, 2); the oldest posted wins
        assert q.pop(1, 2) == (ANY, ANY, "anyany")
        assert q.pop(1, 2) == (1, ANY, "bysrc")
        assert q.pop(1, 2) == (ANY, 2, "bytag")
        assert q.pop(1, 2) == (1, 2, "exact")
        assert q.pop(1, 2) is None

    def test_pop_source_skips_wildcards(self):
        q = IndexedRecvQueue("q", _envelope)
        q.push((ANY, 0, "wild"))
        q.push((3, 0, "pinned-a"))
        q.push((3, 1, "pinned-b"))
        assert q.pop_source(3) == (3, 0, "pinned-a")
        assert q.pop_source(3) == (3, 1, "pinned-b")
        assert q.pop_source(3) is None
        assert len(q) == 1  # the wildcard stays posted

    def test_remove_first_and_drain_order(self):
        q = IndexedRecvQueue("q", _envelope)
        q.push((1, 0, "a"))
        q.push((ANY, ANY, "b"))
        q.push((2, 5, "c"))
        assert q.remove_first(lambda r: r[2] == "b") == (ANY, ANY, "b")
        assert q.drain() == [(1, 0, "a"), (2, 5, "c")]
        assert not q


# -- differential fuzz: indexed vs scan ------------------------------------------

message_op = st.one_of(
    st.tuples(st.just("push"), st.integers(0, 3), st.integers(0, 3)),
    st.tuples(st.just("pop"),
              st.sampled_from([ANY, 0, 1, 2, 3]),
              st.sampled_from([ANY, 0, 1, 2, 3])),
    st.tuples(st.just("peek"),
              st.sampled_from([ANY, 0, 1, 2, 3]),
              st.sampled_from([ANY, 0, 1, 2, 3])),
)


@given(st.lists(message_op, max_size=200))
@_FUZZ
def test_message_queue_matches_scan_oracle(ops):
    """Same ops -> same results, probe counts, and survivors."""
    idx, scan = _mk_message_queues()
    uid = 0
    for op in ops:
        kind = op[0]
        if kind == "push":
            item = (op[1], op[2], uid)
            uid += 1
            idx.push(item)
            scan.push(item)
        elif kind == "pop":
            assert idx.pop(op[1], op[2]) == scan.pop(op[1], op[2])
        else:
            assert idx.peek(op[1], op[2]) == scan.peek(op[1], op[2])
        assert len(idx) == len(scan)
    assert list(idx) == list(scan)
    # the cost metric agrees too: probes = entries examined, min 1/attempt
    assert idx.stats.match_fast_hits == scan.stats.match_fast_hits
    assert idx.stats.wildcard_scans == scan.stats.wildcard_scans


recv_op = st.one_of(
    st.tuples(st.just("push"),
              st.sampled_from([ANY, 0, 1, 2, 3]),
              st.sampled_from([ANY, 0, 1, 2, 3])),
    st.tuples(st.just("pop"), st.integers(0, 3), st.integers(0, 3)),
    st.tuples(st.just("pop_source"), st.integers(0, 3), st.just(0)),
)


@given(st.lists(recv_op, max_size=200))
@_FUZZ
def test_recv_queue_matches_scan_oracle(ops):
    idx, scan = _mk_recv_queues()
    uid = 0
    for op in ops:
        kind = op[0]
        if kind == "push":
            item = (op[1], op[2], uid)
            uid += 1
            idx.push(item)
            scan.push(item)
        elif kind == "pop":
            assert idx.pop(op[1], op[2]) == scan.pop(op[1], op[2])
        else:
            assert idx.pop_source(op[1]) == scan.pop_source(op[1])
        assert len(idx) == len(scan)
    assert list(idx) == list(scan)
    assert idx.drain() == scan.drain()


@given(st.lists(st.tuples(st.integers(0, 2), st.integers(0, 2)),
                min_size=1, max_size=120),
       st.lists(st.tuples(st.sampled_from([ANY, 0, 1, 2]),
                          st.sampled_from([ANY, 0, 1, 2])),
                min_size=1, max_size=120))
@_FUZZ
def test_bulk_push_then_query_storm(envelopes, queries):
    """Dense duplicate envelopes, then a storm of mixed queries."""
    idx, scan = _mk_message_queues()
    for uid, (src, tag) in enumerate(envelopes):
        idx.push((src, tag, uid))
        scan.push((src, tag, uid))
    for src, tag in queries:
        assert idx.pop(src, tag) == scan.pop(src, tag)
    assert list(idx) == list(scan)


def test_probe_cost_scales_with_scan_not_index():
    """The headline asymptotics: reversed exact-source recv queue drain.

    N messages from distinct sources, popped in reverse arrival order:
    the scan oracle probes ~N^2/2 entries, the index ~N.
    """
    n = 64
    idx, scan = _mk_message_queues()
    for src in range(n):
        idx.push((src, 0, src))
        scan.push((src, 0, src))
    for src in reversed(range(n)):
        assert idx.pop(src, 0) == scan.pop(src, 0)
    assert scan.stats.match_probes == n * (n + 1) // 2
    assert idx.stats.match_probes == n
    assert scan.stats.match_probes / idx.stats.match_probes > 5
