"""Tests for the batched sweep engine (`repro.sweep`).

Covers the spec grammar and its deterministic expansion, the
content-hash memo cache (identical spec -> identical key across
processes; any single-axis edit -> new key), the inline and
process-pool runners, report aggregation, and the CLI subcommands.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main
from repro.errors import ConfigError
from repro.surf import EngineStats
from repro.sweep import (
    ResultCache,
    SweepSpec,
    point_fingerprint,
    point_key,
    result_rows,
    rows_to_csv,
    rows_to_json,
    run_sweep,
    sensitivity,
)
from repro.sweep.runner import _worker_platform

BASE_SPEC = {
    "name": "unit",
    "platforms": [{"spec": "cluster:2:125MBps:50us"},
                  {"spec": "cluster:2:1.25GBps:10us"}],
    "workloads": [{"builtin": "pingpong", "n": 2,
                   "params": {"size": 32768, "reps": 2}}],
    "axes": {"eager_threshold": [4096, 65536]},
}


def make_spec(tmp_path, **overrides):
    data = json.loads(json.dumps(BASE_SPEC))  # deep copy
    data.update(overrides)
    return SweepSpec.from_dict(data, base_dir=tmp_path)


class TestSpec:
    def test_json_and_toml_load_identically(self, tmp_path):
        tomllib = pytest.importorskip("tomllib")
        del tomllib
        (tmp_path / "s.json").write_text(json.dumps(BASE_SPEC))
        (tmp_path / "s.toml").write_text(
            'name = "unit"\n'
            '[[platforms]]\nspec = "cluster:2:125MBps:50us"\n'
            '[[platforms]]\nspec = "cluster:2:1.25GBps:10us"\n'
            '[[workloads]]\nbuiltin = "pingpong"\nn = 2\n'
            'params = { size = 32768, reps = 2 }\n'
            '[axes]\neager_threshold = [4096, 65536]\n'
        )
        a = SweepSpec.load(tmp_path / "s.json")
        b = SweepSpec.load(tmp_path / "s.toml")
        assert [p.label() for p in a.expand()] == \
               [p.label() for p in b.expand()]
        assert [point_key(p, tmp_path) for p in a.expand()] == \
               [point_key(p, tmp_path) for p in b.expand()]

    def test_expansion_is_deterministic_and_ordered(self, tmp_path):
        spec = make_spec(tmp_path,
                         axes={"sharing": ["exact", "approx"],
                               "eager_threshold": [1024, 2048]})
        points = spec.expand()
        # 2 platforms x 1 workload x 4 configs
        assert len(points) == 8
        assert [p.index for p in points] == list(range(8))
        # axes iterate in sorted-key order: eager_threshold before sharing
        assert points[0].assignment == (("eager_threshold", 1024),
                                        ("sharing", "exact"))
        assert points[1].assignment == (("eager_threshold", 1024),
                                        ("sharing", "approx"))
        assert [p.label() for p in spec.expand()] == \
               [p.label() for p in points]

    def test_point_config_translation(self, tmp_path):
        spec = make_spec(tmp_path,
                         axes={"coll.alltoall": ["pairwise"],
                               "ctx": ["coroutine"]},
                         options={"comm_retries": 2})
        point = spec.expand()[0]
        config = point.smpi_config()
        assert config.coll_algorithms == {"alltoall": "pairwise"}
        assert config.comm_retries == 2
        assert point.ctx() == "coroutine"

    def test_unknown_axis_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="unknown sweep axis"):
            make_spec(tmp_path, axes={"warp_speed": [9]})
        with pytest.raises(ConfigError, match="coll."):
            make_spec(tmp_path, axes={"coll_algorithms": [{}]})

    def test_bad_axis_value_rejected_at_expansion(self, tmp_path):
        spec = make_spec(tmp_path, axes={"ctx": ["hyperthread"]})
        with pytest.raises(ConfigError, match="bad ctx value"):
            spec.expand()
        spec = make_spec(tmp_path, axes={"on_host_down": ["shrug"]})
        with pytest.raises(ConfigError):
            spec.expand()

    def test_structural_validation(self, tmp_path):
        with pytest.raises(ConfigError, match="no platforms"):
            SweepSpec.from_dict({"workloads": BASE_SPEC["workloads"]})
        with pytest.raises(ConfigError, match="no workloads"):
            SweepSpec.from_dict({"platforms": ["cluster:2"]})
        with pytest.raises(ConfigError, match="exactly one of"):
            SweepSpec.from_dict({
                "platforms": ["cluster:2"],
                "workloads": [{"builtin": "pingpong", "file": "x.py",
                               "n": 2}],
            })
        with pytest.raises(ConfigError, match="unknown sweep spec keys"):
            SweepSpec.from_dict(dict(BASE_SPEC, typo=1))

    def test_missing_spec_file(self):
        with pytest.raises(ConfigError, match="not found"):
            SweepSpec.load("no-such-sweep.toml")


class TestCacheKey:
    def test_identical_specs_share_keys(self, tmp_path):
        a = make_spec(tmp_path).expand()
        b = make_spec(tmp_path).expand()
        assert [point_key(p, tmp_path) for p in a] == \
               [point_key(p, tmp_path) for p in b]

    def test_key_stable_across_processes(self, tmp_path):
        """The content hash is machine-stable, not id()/hash()-seeded."""
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(json.dumps(BASE_SPEC))
        script = (
            "import json, sys\n"
            "from repro.sweep import SweepSpec, point_key\n"
            f"spec = SweepSpec.load({str(spec_file)!r})\n"
            "print(json.dumps([point_key(p, spec.base_dir)"
            " for p in spec.expand()]))\n"
        )
        keys = []
        for seed in ("0", "424242"):
            out = subprocess.run(
                [sys.executable, "-c", script], capture_output=True,
                text=True, check=True,
                env={"PYTHONPATH": str(Path(__file__).parent.parent / "src"),
                     "PYTHONHASHSEED": seed, "PATH": "/usr/bin:/bin"},
            )
            keys.append(json.loads(out.stdout))
        assert keys[0] == keys[1]
        parent = [point_key(p, tmp_path) for p in make_spec(tmp_path).expand()]
        assert keys[0] == parent

    def test_any_single_axis_edit_changes_the_key(self, tmp_path):
        base = point_key(make_spec(tmp_path).expand()[0], tmp_path)
        edits = [
            # platform bandwidth
            dict(platforms=[{"spec": "cluster:2:250MBps:50us"},
                            BASE_SPEC["platforms"][1]]),
            # workload parameter
            dict(workloads=[{"builtin": "pingpong", "n": 2,
                             "params": {"size": 65536, "reps": 2}}]),
            # rank count
            dict(workloads=[{"builtin": "pingpong", "n": 4,
                             "params": {"size": 32768, "reps": 2}}]),
            # different builtin
            dict(workloads=[{"builtin": "ring", "n": 2}]),
            # config axis value
            dict(axes={"eager_threshold": [8192, 65536]}),
            # a fixed option
            dict(options={"comm_retries": 1}),
            # execution backend
            dict(axes={"eager_threshold": [4096], "ctx": ["thread"]}),
        ]
        seen = {base}
        for overrides in edits:
            key = point_key(make_spec(tmp_path, **overrides).expand()[0],
                            tmp_path)
            assert key not in seen, f"edit {overrides} did not change the key"
            seen.add(key)

    def test_file_workload_content_hashes(self, tmp_path):
        app = tmp_path / "app.py"
        app.write_text("def app(mpi):\n    return mpi.rank\n")
        spec = make_spec(tmp_path, workloads=[{"file": "app.py", "n": 2}])
        first = point_key(spec.expand()[0], tmp_path)
        again = point_key(spec.expand()[0], tmp_path)
        assert first == again
        app.write_text("def app(mpi):\n    return mpi.rank + 1\n")
        assert point_key(spec.expand()[0], tmp_path) != first

    def test_fingerprint_covers_profile_contents(self, tmp_path):
        profile = tmp_path / "wave.trace"
        profile.write_text("PERIODICITY 1.0\n0.0 1.0\n0.5 0.5\n")
        spec = make_spec(tmp_path, platforms=[
            {"spec": "cluster:2", "availability": ["cli-l0=wave.trace"]}])
        first = point_key(spec.expand()[0], tmp_path)
        profile.write_text("PERIODICITY 1.0\n0.0 1.0\n0.5 0.25\n")
        assert point_key(spec.expand()[0], tmp_path) != first

    def test_fingerprint_is_inspectable(self, tmp_path):
        fp = point_fingerprint(make_spec(tmp_path).expand()[0], tmp_path)
        assert fp["workload"]["source"].startswith("builtin:pingpong:")
        assert "<platform" in fp["platform"]["xml"]
        assert fp["config"]["eager_threshold"] == 4096


class TestRunner:
    def test_inline_run_then_full_cache_hit(self, tmp_path):
        spec = make_spec(tmp_path)
        cache = ResultCache(tmp_path / "cache")
        cold = run_sweep(spec, jobs=1, cache=cache)
        assert cold.hits == 0 and cold.misses == 4 and not cold.errors
        assert len(cache) == 4
        warm = run_sweep(spec, jobs=1, cache=cache)
        assert warm.hits == 4 and warm.misses == 0
        for a, b in zip(cold.points, warm.points):
            assert b.cached and a.simulated_time == b.simulated_time
            assert a.stats.to_dict() == b.stats.to_dict()

    def test_force_and_no_cache(self, tmp_path):
        spec = make_spec(tmp_path)
        cache = ResultCache(tmp_path / "cache")
        run_sweep(spec, jobs=1, cache=cache)
        forced = run_sweep(spec, jobs=1, cache=cache, force=True)
        assert forced.hits == 0 and forced.misses == 4
        uncached = run_sweep(spec, jobs=1, cache=None)
        assert uncached.hits == 0 and not uncached.errors

    def test_process_pool_matches_inline(self, tmp_path):
        spec = make_spec(tmp_path)
        inline = run_sweep(spec, jobs=1, cache=None)
        pooled = run_sweep(spec, jobs=2, cache=ResultCache(tmp_path / "c2"))
        assert pooled.workers == 2
        for a, b in zip(inline.points, pooled.points):
            assert a.simulated_time == pytest.approx(b.simulated_time,
                                                     abs=0.0, rel=0.0)

    def test_failed_points_are_reported_not_cached(self, tmp_path):
        spec = make_spec(tmp_path, platforms=[
            {"spec": "cluster:2", "fail_at": ["0.0:cli-l0"]}])
        cache = ResultCache(tmp_path / "cache")
        result = run_sweep(spec, jobs=1, cache=cache)
        assert len(result.errors) == len(result.points)
        assert len(cache) == 0
        again = run_sweep(spec, jobs=1, cache=cache)
        assert again.hits == 0  # errors never memoize

    def test_trace_artifacts_land_in_the_cache(self, tmp_path):
        spec = make_spec(tmp_path, trace=True,
                         axes={"eager_threshold": [4096]})
        cache = ResultCache(tmp_path / "cache")
        result = run_sweep(spec, jobs=1, cache=cache)
        warm = run_sweep(spec, jobs=1, cache=cache)
        assert warm.hits == len(result.points)
        for point_result in list(result.points) + list(warm.points):
            assert point_result.trace_path is not None
            text = Path(point_result.trace_path).read_text()
            assert text.splitlines()[0].startswith("kind")

    def test_worker_platform_is_reused(self, tmp_path):
        desc = {"spec": "cluster:2", "availability": (),
                "state_profile": (), "fail_at": (), "restore_at": ()}
        first = _worker_platform(desc, 2, str(tmp_path))
        second = _worker_platform(desc, 2, str(tmp_path))
        assert first is second
        other = _worker_platform(desc, 4, str(tmp_path))
        assert other is not first


class TestReport:
    def test_rows_csv_json_and_sensitivity(self, tmp_path):
        spec = make_spec(tmp_path)
        result = run_sweep(spec, jobs=1, cache=None)
        rows = result_rows(result)
        assert len(rows) == 4
        assert {row["eager_threshold"] for row in rows} == {4096, 65536}
        csv_text = rows_to_csv(rows)
        assert csv_text.splitlines()[0].startswith("point,platform,workload")
        assert len(csv_text.splitlines()) == 5
        parsed = json.loads(rows_to_json(rows))
        assert parsed[0]["simulated_time"] == rows[0]["simulated_time"]
        means = sensitivity(rows, "eager_threshold")
        assert set(means) == {4096, 65536}
        assert all(v > 0 for v in means.values())


class TestSweepCli:
    def write_spec(self, tmp_path):
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(json.dumps(BASE_SPEC))
        return str(spec_file)

    def test_run_status_report(self, tmp_path, capsys):
        spec_file = self.write_spec(tmp_path)
        cache_dir = str(tmp_path / "cache")
        assert main(["sweep", "run", spec_file, "--jobs", "1",
                     "--cache-dir", cache_dir]) == 0
        first = capsys.readouterr().out
        assert "cache hits     : 0/4" in first
        assert main(["sweep", "run", spec_file, "--jobs", "1",
                     "--cache-dir", cache_dir]) == 0
        second = capsys.readouterr().out
        assert "cache hits     : 4/4 (all points served from cache)" in second
        assert main(["sweep", "status", spec_file,
                     "--cache-dir", cache_dir]) == 0
        status = capsys.readouterr().out
        assert "4/4 points ready" in status
        out_csv = tmp_path / "report.csv"
        assert main(["sweep", "report", spec_file, "--cache-dir", cache_dir,
                     "--format", "csv", "-o", str(out_csv)]) == 0
        capsys.readouterr()
        assert len(out_csv.read_text().splitlines()) == 5

    def test_run_reports_failures_with_exit_code(self, tmp_path, capsys):
        spec_file = tmp_path / "bad.json"
        data = json.loads(json.dumps(BASE_SPEC))
        data["platforms"] = [{"spec": "cluster:2", "fail_at": ["0.0:cli-l0"]}]
        spec_file.write_text(json.dumps(data))
        assert main(["sweep", "run", str(spec_file), "--jobs", "1",
                     "--cache-dir", str(tmp_path / "c")]) == 1
        out = capsys.readouterr().out
        assert "FAILED" in out

    def test_bad_spec_is_a_config_error(self, tmp_path, capsys):
        spec_file = tmp_path / "broken.json"
        spec_file.write_text("{not json")
        assert main(["sweep", "run", str(spec_file)]) == 2
        assert "error:" in capsys.readouterr().err


class TestEngineStatsRoundTrip:
    def test_round_trip_identity(self):
        stats = EngineStats(steps=3, shares=2, fill_rounds=7,
                            extra={"note": 1})
        payload = stats.to_dict()
        assert payload["schema_version"] == EngineStats.SCHEMA_VERSION
        clone = EngineStats.from_dict(payload)
        assert clone == stats
        assert clone.to_dict() == payload

    def test_round_trip_survives_json(self):
        stats = EngineStats(actions_created=5, ctx_switches=11)
        clone = EngineStats.from_dict(json.loads(json.dumps(stats.to_dict())))
        assert clone == stats

    def test_schema_version_mismatch_rejected(self):
        from repro.errors import SimulationError

        payload = EngineStats().to_dict()
        payload["schema_version"] = EngineStats.SCHEMA_VERSION + 1
        with pytest.raises(SimulationError, match="schema_version"):
            EngineStats.from_dict(payload)
        payload.pop("schema_version")
        with pytest.raises(SimulationError, match="schema_version"):
            EngineStats.from_dict(payload)

    def test_unknown_counter_rejected(self):
        from repro.errors import SimulationError

        payload = EngineStats().to_dict()
        payload["quantum_flux"] = 9
        with pytest.raises(SimulationError, match="quantum_flux"):
            EngineStats.from_dict(payload)
