"""Correctness of every collective, across algorithms and communicator
sizes.  Each algorithm is forced through the configuration table and its
result compared with a directly-computed reference — proving the paper's
claim that collectives decomposed into point-to-point messages still
compute the right thing on-line."""

from __future__ import annotations

import numpy as np
import pytest

from repro.smpi import MAX, SUM, SmpiConfig, smpirun
from repro.smpi import op as op_mod
from repro.smpi.coll import ALGORITHMS, binomial_tree_edges, pairwise_schedule
from repro.surf import cluster

SIZES = [1, 2, 3, 4, 5, 7, 8, 13, 16]


def run_coll(app, n_ranks, algorithm_table=None, n_elems=6):
    config = SmpiConfig(coll_algorithms=algorithm_table or {})
    platform = cluster("coll", n_ranks)
    return smpirun(app, n_ranks, platform, app_args=(n_elems,), config=config)


# ---------------------------------------------------------------- bcast


@pytest.mark.parametrize("algo", sorted(ALGORITHMS["bcast"]))
@pytest.mark.parametrize("n", [1, 2, 5, 8, 13])
@pytest.mark.parametrize("root", [0, "last"])
def test_bcast(algo, n, root):
    root_rank = 0 if root == 0 else n - 1

    def app(mpi, elems):
        buf = (
            np.arange(elems, dtype=np.float64) + 100.0
            if mpi.rank == root_rank
            else np.zeros(elems)
        )
        mpi.COMM_WORLD.Bcast(buf, root=root_rank)
        return buf.tolist()

    result = run_coll(app, n, {"bcast": algo}, n_elems=32)
    expected = (np.arange(32, dtype=np.float64) + 100.0).tolist()
    for rank_result in result.returns:
        assert rank_result == expected


def test_bcast_scatter_allgather_large_buffer():
    def app(mpi, elems):
        buf = (
            np.arange(elems, dtype=np.float64)
            if mpi.rank == 0
            else np.zeros(elems)
        )
        mpi.COMM_WORLD.Bcast(buf, root=0)
        return float(buf.sum())

    result = run_coll(app, 6, {"bcast": "scatter_allgather"}, n_elems=10_000)
    expected = float(np.arange(10_000, dtype=np.float64).sum())
    assert all(v == expected for v in result.returns)


# ---------------------------------------------------------------- barrier


@pytest.mark.parametrize("algo", sorted(ALGORITHMS["barrier"]))
@pytest.mark.parametrize("n", [1, 2, 5, 8, 13])
def test_barrier_synchronises(algo, n):
    def app(mpi, _elems):
        mpi.sleep(0.01 * mpi.rank)  # stagger arrivals
        mpi.COMM_WORLD.Barrier()
        return mpi.wtime()

    result = run_coll(app, n, {"barrier": algo})
    latest_arrival = 0.01 * (n - 1)
    for t in result.returns:
        assert t >= latest_arrival - 1e-9  # nobody left before the last arrived


# ---------------------------------------------------------------- scatter / gather


@pytest.mark.parametrize("algo", sorted(ALGORITHMS["scatter"]))
@pytest.mark.parametrize("n", [1, 2, 4, 7, 16])
@pytest.mark.parametrize("root", [0, "mid"])
def test_scatter(algo, n, root):
    root_rank = 0 if root == 0 else n // 2

    def app(mpi, elems):
        send = (
            np.arange(mpi.size * elems, dtype=np.float64)
            if mpi.rank == root_rank
            else None
        )
        recv = np.zeros(elems)
        mpi.COMM_WORLD.Scatter(send, recv, root=root_rank)
        return recv.tolist()

    elems = 5
    result = run_coll(app, n, {"scatter": algo}, n_elems=elems)
    for rank, got in enumerate(result.returns):
        expected = np.arange(rank * elems, (rank + 1) * elems, dtype=float)
        assert got == expected.tolist()


@pytest.mark.parametrize("algo", sorted(ALGORITHMS["gather"]))
@pytest.mark.parametrize("n", [1, 2, 4, 7, 16])
@pytest.mark.parametrize("root", [0, "mid"])
def test_gather(algo, n, root):
    root_rank = 0 if root == 0 else n // 2

    def app(mpi, elems):
        send = np.full(elems, float(mpi.rank))
        recv = np.zeros(mpi.size * elems) if mpi.rank == root_rank else None
        mpi.COMM_WORLD.Gather(send, recv, root=root_rank)
        return None if recv is None else recv.tolist()

    elems = 3
    result = run_coll(app, n, {"gather": algo}, n_elems=elems)
    got = result.returns[root_rank]
    expected = np.repeat(np.arange(n, dtype=float), elems).tolist()
    assert got == expected


def test_scatterv_gatherv_uneven():
    def app(mpi, _elems):
        comm = mpi.COMM_WORLD
        size = mpi.size
        counts = [i + 1 for i in range(size)]
        displs = np.concatenate([[0], np.cumsum(counts)[:-1]]).astype(int).tolist()
        total = sum(counts)
        send = np.arange(total, dtype=np.float64) if mpi.rank == 0 else None
        recv = np.zeros(counts[mpi.rank])
        comm.Scatterv(send, counts, displs, recv, root=0)

        back = np.zeros(total) if mpi.rank == 0 else None
        comm.Gatherv(recv, back, counts, displs, root=0)
        if mpi.rank == 0:
            return back.tolist()
        return recv.tolist()

    result = run_coll(app, 5)
    assert result.returns[0] == np.arange(15, dtype=float).tolist()
    assert result.returns[2] == [3.0, 4.0, 5.0]


# ---------------------------------------------------------------- allgather


@pytest.mark.parametrize("algo", sorted(ALGORITHMS["allgather"]))
@pytest.mark.parametrize("n", [1, 2, 4, 8, 16])
def test_allgather(algo, n):
    if algo == "recursive_doubling" and n & (n - 1):
        pytest.skip("recursive doubling needs a power of two")

    def app(mpi, elems):
        send = np.full(elems, float(mpi.rank))
        recv = np.zeros(mpi.size * elems)
        mpi.COMM_WORLD.Allgather(send, recv)
        return recv.tolist()

    elems = 4
    result = run_coll(app, n, {"allgather": algo}, n_elems=elems)
    expected = np.repeat(np.arange(n, dtype=float), elems).tolist()
    for got in result.returns:
        assert got == expected


def test_allgather_bruck_odd_size():
    def app(mpi, elems):
        send = np.full(elems, float(mpi.rank))
        recv = np.zeros(mpi.size * elems)
        mpi.COMM_WORLD.Allgather(send, recv)
        return recv.tolist()

    result = run_coll(app, 7, {"allgather": "bruck"}, n_elems=2)
    expected = np.repeat(np.arange(7, dtype=float), 2).tolist()
    assert all(got == expected for got in result.returns)


def test_allgatherv():
    def app(mpi, _elems):
        comm = mpi.COMM_WORLD
        counts = [i + 1 for i in range(mpi.size)]
        displs = np.concatenate([[0], np.cumsum(counts)[:-1]]).astype(int).tolist()
        send = np.full(counts[mpi.rank], float(mpi.rank))
        recv = np.zeros(sum(counts))
        comm.Allgatherv(send, recv, counts, displs)
        return recv.tolist()

    result = run_coll(app, 4)
    expected = [0.0, 1.0, 1.0, 2.0, 2.0, 2.0, 3.0, 3.0, 3.0, 3.0]
    assert all(got == expected for got in result.returns)


# ---------------------------------------------------------------- reductions


@pytest.mark.parametrize("algo", sorted(ALGORITHMS["reduce"]))
@pytest.mark.parametrize("n", [1, 2, 4, 7, 16])
def test_reduce_sum(algo, n):
    def app(mpi, elems):
        send = np.arange(elems, dtype=np.float64) * (mpi.rank + 1)
        recv = np.zeros(elems) if mpi.rank == 0 else None
        mpi.COMM_WORLD.Reduce(send, recv, op=SUM, root=0)
        return None if recv is None else recv.tolist()

    elems = 4
    result = run_coll(app, n, {"reduce": algo}, n_elems=elems)
    factor = n * (n + 1) / 2
    expected = (np.arange(elems, dtype=float) * factor).tolist()
    assert result.returns[0] == pytest.approx(expected)


def test_reduce_max_nonzero_root():
    def app(mpi, elems):
        send = np.full(elems, float(mpi.rank))
        recv = np.zeros(elems) if mpi.rank == 2 else None
        mpi.COMM_WORLD.Reduce(send, recv, op=MAX, root=2)
        return None if recv is None else recv.tolist()

    result = run_coll(app, 5, n_elems=3)
    assert result.returns[2] == [4.0, 4.0, 4.0]


def _matmul_op():
    """2x2 matrix product on flattened buffers: associative (as MPI
    requires) but NOT commutative — rank order must be preserved."""

    def fold(a, b):
        return (np.asarray(a).reshape(2, 2) @ np.asarray(b).reshape(2, 2)).reshape(-1)

    return op_mod.create(fold, commute=False, name="matmul")


def _rank_matrix(rank):
    return np.array([[1.0, rank + 1.0], [0.0, 1.0]])


def test_reduce_noncommutative_preserves_order():
    fold = _matmul_op()

    def app(mpi, _elems):
        send = _rank_matrix(mpi.rank).reshape(-1)
        recv = np.zeros(4) if mpi.rank == 0 else None
        mpi.COMM_WORLD.Reduce(send, recv, op=fold, root=0)
        return None if recv is None else recv.tolist()

    n = 5
    result = run_coll(app, n)
    expected = np.eye(2)
    for rank in range(n):
        expected = expected @ _rank_matrix(rank)
    assert result.returns[0] == pytest.approx(expected.reshape(-1).tolist())


@pytest.mark.parametrize("algo", sorted(ALGORITHMS["allreduce"]))
@pytest.mark.parametrize("n", [1, 2, 3, 4, 6, 8, 13])
def test_allreduce(algo, n):
    def app(mpi, elems):
        send = np.full(elems, float(mpi.rank + 1))
        recv = np.zeros(elems)
        mpi.COMM_WORLD.Allreduce(send, recv, op=SUM)
        return recv.tolist()

    elems = 3
    result = run_coll(app, n, {"allreduce": algo}, n_elems=elems)
    expected = [n * (n + 1) / 2] * elems
    for got in result.returns:
        assert got == pytest.approx(expected)


def test_allreduce_noncommutative_falls_back():
    fold = _matmul_op()

    def app(mpi, _elems):
        send = _rank_matrix(mpi.rank).reshape(-1)
        recv = np.zeros(4)
        mpi.COMM_WORLD.Allreduce(send, recv, op=fold)
        return recv.tolist()

    n = 4
    result = run_coll(app, n)
    expected = np.eye(2)
    for rank in range(n):
        expected = expected @ _rank_matrix(rank)
    for got in result.returns:
        assert got == pytest.approx(expected.reshape(-1).tolist())


@pytest.mark.parametrize("n", [1, 2, 4, 5, 8])
def test_scan(n):
    def app(mpi, elems):
        send = np.full(elems, float(mpi.rank + 1))
        recv = np.zeros(elems)
        mpi.COMM_WORLD.Scan(send, recv, op=SUM)
        return recv.tolist()

    result = run_coll(app, n, n_elems=2)
    for rank, got in enumerate(result.returns):
        expected = sum(range(1, rank + 2))
        assert got == [expected, expected]


def test_scan_noncommutative():
    fold = _matmul_op()

    def app(mpi, _elems):
        send = _rank_matrix(mpi.rank).reshape(-1)
        recv = np.zeros(4)
        mpi.COMM_WORLD.Scan(send, recv, op=fold)
        return recv.tolist()

    n = 4
    result = run_coll(app, n)
    prefix = np.eye(2)
    for rank in range(n):
        prefix = prefix @ _rank_matrix(rank)
        assert result.returns[rank] == pytest.approx(prefix.reshape(-1).tolist())


@pytest.mark.parametrize("n", [2, 4, 5, 8])
def test_exscan(n):
    def app(mpi, elems):
        send = np.full(elems, float(mpi.rank + 1))
        recv = np.full(elems, -1.0)
        mpi.COMM_WORLD.Exscan(send, recv, op=SUM)
        return recv.tolist()

    result = run_coll(app, n, n_elems=1)
    assert result.returns[0] == [-1.0]  # rank 0 untouched
    for rank in range(1, n):
        assert result.returns[rank] == [sum(range(1, rank + 1))]


@pytest.mark.parametrize("algo", sorted(ALGORITHMS["reduce_scatter"]))
@pytest.mark.parametrize("n", [1, 2, 4, 7])
def test_reduce_scatter(algo, n):
    def app(mpi, elems):
        counts = [elems] * mpi.size
        send = np.tile(np.arange(mpi.size * elems, dtype=np.float64), 1)
        recv = np.zeros(elems)
        mpi.COMM_WORLD.Reduce_scatter(send, recv, counts, op=SUM)
        return recv.tolist()

    elems = 2
    result = run_coll(app, n, {"reduce_scatter": algo}, n_elems=elems)
    for rank, got in enumerate(result.returns):
        base = np.arange(n * elems, dtype=float)[rank * elems : (rank + 1) * elems]
        assert got == pytest.approx((base * n).tolist())


# ---------------------------------------------------------------- alltoall


@pytest.mark.parametrize("algo", sorted(ALGORITHMS["alltoall"]))
@pytest.mark.parametrize("n", [1, 2, 4, 5, 8, 16])
def test_alltoall(algo, n):
    def app(mpi, elems):
        size = mpi.size
        send = np.arange(size * elems, dtype=np.float64) + 1000.0 * mpi.rank
        recv = np.zeros(size * elems)
        mpi.COMM_WORLD.Alltoall(send, recv)
        return recv.tolist()

    elems = 3
    result = run_coll(app, n, {"alltoall": algo}, n_elems=elems)
    for rank, got in enumerate(result.returns):
        for peer in range(n):
            block = got[peer * elems : (peer + 1) * elems]
            expected = (
                np.arange(rank * elems, (rank + 1) * elems, dtype=float)
                + 1000.0 * peer
            )
            assert block == expected.tolist(), (rank, peer)


@pytest.mark.parametrize("algo", sorted(ALGORITHMS["alltoallv"]))
def test_alltoallv_uneven(algo):
    def app(mpi, _elems):
        comm = mpi.COMM_WORLD
        size = mpi.size
        # rank r sends r+1 elements to every peer
        sendcounts = [mpi.rank + 1] * size
        sdispls = [i * (mpi.rank + 1) for i in range(size)]
        send = np.arange(size * (mpi.rank + 1), dtype=np.float64) + 100.0 * mpi.rank
        recvcounts = [p + 1 for p in range(size)]
        rdispls = np.concatenate([[0], np.cumsum(recvcounts)[:-1]]).astype(int).tolist()
        recv = np.zeros(sum(recvcounts))
        comm.Alltoallv(send, sendcounts, sdispls, recv, recvcounts, rdispls)
        return recv.tolist()

    n = 4
    result = run_coll(app, n, {"alltoallv": algo})
    for rank, got in enumerate(result.returns):
        offset = 0
        for peer in range(n):
            count = peer + 1
            expected = (
                np.arange(rank * count, (rank + 1) * count, dtype=float)
                + 100.0 * peer
            )
            assert got[offset : offset + count] == expected.tolist()
            offset += count


def test_alltoallv_pairwise_skips_zero_counts():
    """The pairwise schedule must stay matched when some counts are 0."""

    def app(mpi, _elems):
        comm = mpi.COMM_WORLD
        size = mpi.size
        # rank r sends only to peers with the opposite parity
        sendcounts = [2 if (mpi.rank + p) % 2 else 0 for p in range(size)]
        sdispls = np.concatenate([[0], np.cumsum(sendcounts)[:-1]]).astype(int).tolist()
        send = np.full(sum(sendcounts), float(mpi.rank))
        recvcounts = [2 if (mpi.rank + p) % 2 else 0 for p in range(size)]
        rdispls = np.concatenate([[0], np.cumsum(recvcounts)[:-1]]).astype(int).tolist()
        recv = np.full(sum(recvcounts), -1.0)
        comm.Alltoallv(send, sendcounts, sdispls, recv, recvcounts, rdispls)
        return recv.tolist()

    n = 4
    result = run_coll(app, n, {"alltoallv": "pairwise"})
    for rank, got in enumerate(result.returns):
        expected = []
        for peer in range(n):
            if (rank + peer) % 2:
                expected.extend([float(peer)] * 2)
        assert got == expected, rank


# ---------------------------------------------------------------- schedules


class TestSchedules:
    def test_binomial_tree_matches_paper_figure6(self):
        """Fig. 6: with 16 processes, root 0 sends 8 chunks to 8, 4 to 4,
        2 to 2, 1 to 1; process 8 sends 4 chunks to 12, etc."""
        edges = binomial_tree_edges(16)
        as_set = set(edges)
        for expected in [(0, 8, 8), (0, 4, 4), (0, 2, 2), (0, 1, 1),
                         (8, 12, 4), (8, 10, 2), (8, 9, 1),
                         (4, 6, 2), (4, 5, 1), (12, 14, 2), (12, 13, 1),
                         (2, 3, 1), (6, 7, 1), (10, 11, 1), (14, 15, 1)]:
            assert expected in as_set
        assert len(edges) == 15  # spanning tree of 16 nodes

    def test_binomial_tree_chunk_conservation(self):
        """Conservation: what a node receives = its own chunk + everything
        it forwards; the root injects all ``size`` chunks."""
        for size in (2, 3, 5, 8, 16, 21, 43):
            edges = binomial_tree_edges(size)
            assert len(edges) == size - 1  # spanning tree
            received = {dst: chunks for _src, dst, chunks in edges}
            sent: dict[int, int] = {}
            for src, _dst, chunks in edges:
                sent[src] = sent.get(src, 0) + chunks
            assert sent.get(0, 0) == size - 1  # root distributes all but its own
            for node in range(1, size):
                assert received[node] == 1 + sent.get(node, 0), (size, node)

    def test_pairwise_schedule_is_permutation_each_step(self):
        """Fig. 10: at every step the sends form a permutation of ranks."""
        for size in (2, 4, 7, 16):
            steps = pairwise_schedule(size)
            assert len(steps) == size
            for step in steps:
                senders = [s for s, _ in step]
                receivers = [r for _, r in step]
                assert sorted(senders) == list(range(size))
                assert sorted(receivers) == list(range(size))

    def test_unknown_algorithm_raises(self):
        from repro.errors import ConfigError

        def app(mpi, _elems):
            mpi.COMM_WORLD.Barrier()

        with pytest.raises(ActorOrConfigError):
            run_coll(app, 2, {"barrier": "telepathy"})


from repro.errors import ActorFailure, ConfigError  # noqa: E402

ActorOrConfigError = (ActorFailure, ConfigError)
