"""Documentation is executable: every fenced ``python`` snippet in the
markdown docs runs, and every intra-repo markdown link resolves.

Snippets within one file execute *in order, sharing one namespace* —
docs read like notebooks (define an app in section 1, analyse its trace
in section 2).  Each file gets a fresh temporary working directory
pre-seeded with the small artifacts the guides reference (``site.xml``).
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent

#: markdown files whose ``python`` snippets must execute
SNIPPET_DOCS = sorted(p.relative_to(REPO) for p in (REPO / "docs").glob("*.md"))
SNIPPET_DOCS += [Path("README.md"), Path("EXPERIMENTS.md")]

#: markdown files whose intra-repo links must resolve
LINK_DOCS = SNIPPET_DOCS + [
    Path(p) for p in ("DESIGN.md", "ROADMAP.md", "CHANGES.md")
    if (REPO / p).exists()
]

_FENCE = re.compile(r"^```(\w*)\s*$")
_LINK = re.compile(r"\[[^\]]*\]\(([^)#\s]+)(?:#[^)\s]*)?\)")
# bare `path` references like `docs/tracing.md` or `benchmarks/bench_x.py`
_BACKTICK_PATH = re.compile(r"`([A-Za-z0-9_./-]+\.(?:md|py|xml|json|txt))`")


def fenced_blocks(path: Path, language: str) -> list[tuple[int, str]]:
    """(start line, source) of each fenced block tagged ``language``."""
    blocks = []
    lines = (REPO / path).read_text(encoding="utf-8").splitlines()
    in_block = False
    tag_matches = False
    start = 0
    body: list[str] = []
    for i, line in enumerate(lines, start=1):
        fence = _FENCE.match(line)
        if fence and not in_block:
            in_block = True
            tag_matches = fence.group(1) == language
            start = i + 1
            body = []
        elif line.strip() == "```" and in_block:
            in_block = False
            if tag_matches and body:
                blocks.append((start, "\n".join(body)))
        elif in_block:
            body.append(line)
    return blocks


@pytest.fixture
def docs_cwd(tmp_path, monkeypatch):
    """A scratch cwd holding the files the guides casually reference."""
    from repro.surf import cluster, save_platform_xml

    save_platform_xml(cluster("site", 4), tmp_path / "site.xml")
    monkeypatch.chdir(tmp_path)
    return tmp_path


@pytest.mark.parametrize("doc", SNIPPET_DOCS, ids=str)
def test_python_snippets_execute(doc, docs_cwd):
    blocks = fenced_blocks(doc, "python")
    if not blocks:
        pytest.skip(f"{doc} has no python snippets")
    namespace: dict = {"__name__": f"docs_{doc.stem}"}
    for start, source in blocks:
        code = compile(source, f"{doc}:{start}", "exec")
        try:
            exec(code, namespace)
        except Exception as exc:  # pragma: no cover - failure reporting
            pytest.fail(f"{doc} snippet at line {start} raised "
                        f"{type(exc).__name__}: {exc}")


#: roots tried when a doc names a file by its short path
#: (`bench_fig3.py` lives in benchmarks/, `surf/maxmin.py` in src/repro/)
_SEARCH_ROOTS = ("", "docs", "benchmarks", "examples", "tests",
                 "src/repro", "src")


@pytest.mark.parametrize("doc", LINK_DOCS, ids=str)
def test_intra_repo_links_resolve(doc):
    text = (REPO / doc).read_text(encoding="utf-8")
    missing = []
    for target in _LINK.findall(text) + _BACKTICK_PATH.findall(text):
        if "://" in target or target.startswith("mailto:"):
            continue
        candidates = [(REPO / doc).parent / target]
        candidates += [REPO / root / target for root in _SEARCH_ROOTS]
        if not any(c.exists() for c in candidates):
            missing.append(target)
    assert not missing, f"{doc} references missing paths: {missing}"
