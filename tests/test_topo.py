"""Tests for Cartesian topologies (extension)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ActorFailure, MpiError
from repro.smpi import PROC_NULL, smpirun
from repro.smpi.topo import cart_create, dims_create
from repro.surf import cluster


def run(app, n):
    return smpirun(app, n, cluster("tp", n))


class TestDimsCreate:
    @pytest.mark.parametrize(
        "nnodes,ndims,expected",
        [
            (12, 2, [4, 3]),
            (16, 2, [4, 4]),
            (8, 3, [2, 2, 2]),
            (7, 1, [7]),
            (6, 2, [3, 2]),
        ],
    )
    def test_balanced_factorisations(self, nnodes, ndims, expected):
        assert dims_create(nnodes, ndims) == expected

    def test_respects_fixed_dims(self):
        assert dims_create(12, 2, [0, 6]) == [2, 6]
        assert dims_create(12, 2, [3, 0]) == [3, 4]

    def test_rejects_impossible(self):
        with pytest.raises(MpiError):
            dims_create(12, 2, [5, 0])
        with pytest.raises(MpiError):
            dims_create(12, 2, [3, 3])

    @given(st.integers(1, 256), st.integers(1, 4))
    @settings(max_examples=80, deadline=None)
    def test_product_property(self, nnodes, ndims):
        dims = dims_create(nnodes, ndims)
        assert len(dims) == ndims
        product = 1
        for d in dims:
            product *= d
        assert product == nnodes
        assert dims == sorted(dims, reverse=True)  # standard: decreasing


class TestCartComm:
    def test_coords_roundtrip(self):
        def app(mpi):
            cart = cart_create(mpi.COMM_WORLD, [2, 3])
            assert cart is not None
            coords = cart.Get_coords(cart.Get_rank())
            back = cart.Get_cart_rank(coords)
            return (cart.Get_rank(), coords, back)

        result = run(app, 6)
        for rank, (r, coords, back) in enumerate(result.returns):
            assert r == rank and back == rank
            assert coords == [rank // 3, rank % 3]

    def test_shift_interior_and_boundary(self):
        def app(mpi):
            cart = cart_create(mpi.COMM_WORLD, [2, 2], periods=[False, False])
            left, right = cart.Shift(1, 1)
            up, down = cart.Shift(0, 1)
            return (left, right, up, down)

        result = run(app, 4)
        # grid: rank = 2*row + col
        assert result.returns[0] == (PROC_NULL, 1, PROC_NULL, 2)
        assert result.returns[3] == (2, PROC_NULL, 1, PROC_NULL)

    def test_periodic_shift_wraps(self):
        def app(mpi):
            cart = cart_create(mpi.COMM_WORLD, [4], periods=[True])
            src, dst = cart.Shift(0, 1)
            return (src, dst)

        result = run(app, 4)
        assert result.returns[0] == (3, 1)
        assert result.returns[3] == (2, 0)

    def test_extra_ranks_get_none(self):
        def app(mpi):
            cart = cart_create(mpi.COMM_WORLD, [2, 2])
            return cart is None

        result = run(app, 6)
        assert result.returns == [False, False, False, False, True, True]

    def test_halo_exchange_on_ring(self):
        """A periodic 1-D ring: each rank gets both neighbours' values."""

        def app(mpi):
            cart = cart_create(mpi.COMM_WORLD, [mpi.size], periods=[True])
            src, dst = cart.Shift(0, 1)
            mine = np.array([float(cart.Get_rank())])
            from_left = np.zeros(1)
            cart.Sendrecv(mine, dst, 1, from_left, src, 1)
            return from_left[0]

        result = run(app, 5)
        assert result.returns == [4.0, 0.0, 1.0, 2.0, 3.0]

    def test_cart_sub_extracts_rows(self):
        def app(mpi):
            cart = cart_create(mpi.COMM_WORLD, [2, 3])
            row = cart.Sub([False, True])  # keep the column dimension
            total = np.zeros(1)
            row.Allreduce(np.array([1.0]), total)
            return (row.size, total[0], row.Get_rank())

        result = run(app, 6)
        for rank, (size, count, sub_rank) in enumerate(result.returns):
            assert size == 3 and count == 3.0
            assert sub_rank == rank % 3

    def test_2d_stencil_converges(self):
        """Full integration: Jacobi sweep on a 2-D periodic grid."""

        def app(mpi):
            cart = cart_create(mpi.COMM_WORLD, dims_create(mpi.size, 2),
                               periods=[True, True])
            value = np.array([float(cart.Get_rank())])
            for _ in range(30):
                neighbours = []
                for direction in (0, 1):
                    src, dst = cart.Shift(direction, 1)
                    incoming = np.zeros(1)
                    cart.Sendrecv(value, dst, 0, incoming, src, 0)
                    neighbours.append(incoming[0])
                    incoming2 = np.zeros(1)
                    cart.Sendrecv(value, src, 1, incoming2, dst, 1)
                    neighbours.append(incoming2[0])
                value = np.array([(value[0] + sum(neighbours)) / 5.0])
            return value[0]

        result = run(app, 4)
        mean = sum(range(4)) / 4.0
        for v in result.returns:
            assert v == pytest.approx(mean, abs=0.05)

    def test_bad_arguments(self):
        def app(mpi):
            try:
                cart_create(mpi.COMM_WORLD, [5, 5])  # 25 > size
            except MpiError:
                return "caught"

        assert run(app, 4).returns[0] == "caught"
