"""Tests for the logarithmic error metric and series comparison."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics import (
    compare_series,
    from_log_space,
    log_error,
    log_error_series,
    max_percent_error,
    mean_percent_error,
)

positive = st.floats(1e-9, 1e9)


class TestLogError:
    def test_exact_match_is_zero(self):
        assert log_error(5.0, 5.0) == 0.0

    def test_double_and_half_are_equal(self):
        """The symmetry that motivated the metric (paper section 7.1):
        X = 2R and X = R/2 give the same error, unlike relative error."""
        assert log_error(2.0, 1.0) == pytest.approx(log_error(0.5, 1.0))

    def test_doubling_is_100_percent(self):
        assert from_log_space(log_error(2.0, 1.0)) == pytest.approx(1.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            log_error(0.0, 1.0)
        with pytest.raises(ValueError):
            log_error(1.0, -2.0)

    def test_series(self):
        errors = log_error_series([1.0, 2.0], [1.0, 1.0])
        assert errors[0] == 0.0
        assert errors[1] == pytest.approx(np.log(2.0))

    def test_series_shape_mismatch(self):
        with pytest.raises(ValueError):
            log_error_series([1.0], [1.0, 2.0])

    def test_mean_and_max_percent(self):
        measured = [1.0, 2.0, 1.0]
        reference = [1.0, 1.0, 1.0]
        assert max_percent_error(measured, reference) == pytest.approx(100.0)
        expected_mean = (np.exp(np.log(2.0) / 3) - 1) * 100
        assert mean_percent_error(measured, reference) == pytest.approx(expected_mean)


@given(positive, positive)
@settings(max_examples=100, deadline=None)
def test_symmetry_property(x, r):
    assert log_error(x, r) == pytest.approx(log_error(r, x), rel=1e-9)


@given(positive, positive, positive)
@settings(max_examples=100, deadline=None)
def test_triangle_inequality(a, b, c):
    assert log_error(a, c) <= log_error(a, b) + log_error(b, c) + 1e-9


@given(positive, positive, st.floats(0.1, 10.0))
@settings(max_examples=100, deadline=None)
def test_scale_invariance(x, r, k):
    """Scaling both values leaves the log error unchanged."""
    assert log_error(k * x, k * r) == pytest.approx(log_error(x, r), abs=1e-9)


class TestCompareSeries:
    def test_fields(self):
        cmp = compare_series("m", [1, 2, 3], [1.0, 2.0, 3.3], [1.0, 2.0, 3.0])
        assert cmp.label == "m"
        assert cmp.mean_error_pct > 0
        assert cmp.max_error_at == 3
        assert "avg" in cmp.row()

    def test_table_lists_every_point(self):
        cmp = compare_series("m", [10, 20], [1.0, 2.0], [1.1, 1.9])
        table = cmp.table("size")
        assert table.count("\n") == 2
        assert "size" in table

    def test_perfect_match(self):
        cmp = compare_series("m", [1, 2], [5.0, 6.0], [5.0, 6.0])
        assert cmp.mean_error_pct == 0.0
        assert cmp.max_error_pct == 0.0
