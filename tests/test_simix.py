"""Tests for the SIMIX process layer: actors, scheduling, activities."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ActorFailure, DeadlockError
from repro.simix import Mailbox, Scheduler
from repro.surf import Engine, cluster


def make_scheduler(n=4):
    return Scheduler(Engine(cluster("sx", n)))


class TestScheduling:
    def test_actor_runs_and_returns(self):
        sched = make_scheduler()
        actor = sched.add_actor("a", "node-0", lambda: 42)
        sched.run()
        assert actor.finished and actor.result == 42

    def test_actors_run_in_registration_order_initially(self):
        sched = make_scheduler()
        order = []
        for i in range(4):
            sched.add_actor(f"a{i}", f"node-{i}", lambda i=i: order.append(i))
        sched.run()
        assert order == [0, 1, 2, 3]

    def test_exactly_one_thread_runs_at_a_time(self):
        """Between blocking points, no two actor threads execute user code
        simultaneously — the strictly-sequential guarantee of §5.1."""
        sched = make_scheduler()
        flag = {"busy": False}
        violations = []

        def body():
            me = sched.current
            for _ in range(3):
                if flag["busy"]:
                    violations.append("overlap")
                flag["busy"] = True
                # non-blocking section: nobody else may run in here
                flag["busy"] = False
                sched.sleep_activity(0.01).wait(me)

        for i in range(4):
            sched.add_actor(f"a{i}", f"node-{i}", body)
        sched.run()
        assert violations == []

    def test_simulated_time_advances_with_sleep(self):
        sched = make_scheduler()

        def body():
            me = sched.current
            sched.sleep_activity(1.5).wait(me)
            return sched.engine.now

        actor = sched.add_actor("a", "node-0", body)
        final = sched.run()
        assert actor.result == pytest.approx(1.5)
        assert final == pytest.approx(1.5)

    def test_parallel_sleeps_overlap(self):
        sched = make_scheduler()

        def body(duration):
            me = sched.current
            sched.sleep_activity(duration).wait(me)

        sched.add_actor("a", "node-0", body, 1.0)
        sched.add_actor("b", "node-1", body, 1.0)
        assert sched.run() == pytest.approx(1.0)  # not 2.0

    def test_actor_exception_propagates(self):
        sched = make_scheduler()

        def boom():
            raise ValueError("kaput")

        sched.add_actor("a", "node-0", boom)
        with pytest.raises(ActorFailure) as info:
            sched.run()
        assert isinstance(info.value.original, ValueError)

    def test_deadlock_detected(self):
        sched = make_scheduler()
        sched.add_actor("a", "node-0", lambda: sched.current.suspend())
        with pytest.raises(DeadlockError):
            sched.run()

    def test_deadlock_report_names_waited_on_activity(self):
        sched = make_scheduler()

        def stuck():
            # an activity nothing will ever complete (no engine action)
            from repro.simix.activity import Activity

            Activity(sched, None, name="phantom-recv").wait(sched.current)

        sched.add_actor("a", "node-0", stuck)
        with pytest.raises(DeadlockError, match="'phantom-recv'"):
            sched.run()

    def test_threads_are_cleaned_up(self):
        before = threading.active_count()
        sched = make_scheduler()
        for i in range(3):
            sched.add_actor(f"a{i}", "node-0", lambda: None)
        sched.run()
        assert threading.active_count() == before

    def test_threads_cleaned_up_after_deadlock(self):
        before = threading.active_count()
        sched = make_scheduler()
        sched.add_actor("a", "node-0", lambda: sched.current.suspend())
        sched.add_actor("b", "node-1", lambda: sched.current.suspend())
        with pytest.raises(DeadlockError):
            sched.run()
        assert threading.active_count() == before

    def test_wait_for_predicate_with_spurious_wakeups(self):
        sched = make_scheduler()
        state = {"ready": False}

        def waiter():
            me = sched.current
            me.wait_for(lambda: state["ready"])
            return sched.engine.now

        def setter():
            me = sched.current
            sched.wake(waiter_actor)  # spurious: predicate still false
            sched.sleep_activity(0.5).wait(me)
            state["ready"] = True
            sched.wake(waiter_actor)

        waiter_actor = sched.add_actor("w", "node-0", waiter)
        sched.add_actor("s", "node-1", setter)
        sched.run()
        assert waiter_actor.result == pytest.approx(0.5)

    def test_actor_spawned_mid_run_executes(self):
        sched = make_scheduler()
        ran = []

        def parent():
            sched.add_actor("child", "node-1", lambda: ran.append("child"))
            me = sched.current
            sched.sleep_activity(0.1).wait(me)

        sched.add_actor("p", "node-0", parent)
        sched.run()
        assert ran == ["child"]


class TestActivities:
    def test_comm_activity_completes_with_payload_slot(self):
        sched = make_scheduler()
        out = {}

        def body():
            me = sched.current
            activity = sched.communicate("node-0", "node-1", 1000, "t")
            activity.payload = b"hello"
            activity.wait(me)
            out["done"] = activity.done
            out["ft"] = activity.finish_time

        sched.add_actor("a", "node-0", body)
        sched.run()
        assert out["done"] and out["ft"] > 0

    def test_exec_activity_charges_host(self):
        sched = make_scheduler()

        def body():
            me = sched.current
            sched.execute(me, 5e8).wait(me)  # hosts are 1 Gf
            return sched.engine.now

        actor = sched.add_actor("a", "node-0", body)
        sched.run()
        assert actor.result == pytest.approx(0.5)

    def test_activity_callbacks_fire_before_wakeup(self):
        sched = make_scheduler()
        events = []

        def body():
            me = sched.current
            activity = sched.sleep_activity(0.1)
            activity.callbacks.append(lambda: events.append("callback"))
            activity.wait(me)
            events.append("woke")

        sched.add_actor("a", "node-0", body)
        sched.run()
        assert events == ["callback", "woke"]

    def test_multiple_waiters_all_wake(self):
        sched = make_scheduler()
        woken = []
        activity_holder = {}

        def creator():
            me = sched.current
            activity_holder["act"] = sched.sleep_activity(0.2)
            activity_holder["act"].wait(me)
            woken.append("creator")

        def joiner():
            me = sched.current
            sched.sleep_activity(0.05).wait(me)  # let creator start
            activity_holder["act"].wait(me)
            woken.append("joiner")

        sched.add_actor("c", "node-0", creator)
        sched.add_actor("j", "node-1", joiner)
        sched.run()
        assert sorted(woken) == ["creator", "joiner"]


class TestMailbox:
    def test_fifo_matching(self):
        box = Mailbox("m")
        box.push(("a", 1))
        box.push(("a", 2))
        box.push(("b", 3))
        assert box.pop_first(lambda x: x[0] == "a") == ("a", 1)
        assert box.pop_first(lambda x: x[0] == "a") == ("a", 2)
        assert box.pop_first(lambda x: x[0] == "a") is None
        assert len(box) == 1

    def test_peek_does_not_remove(self):
        box = Mailbox("m")
        box.push(1)
        assert box.peek_first(lambda x: True) == 1
        assert len(box) == 1

    def test_remove_specific(self):
        box = Mailbox("m")
        box.push(1)
        box.push(2)
        assert box.remove(1)
        assert not box.remove(1)
        assert list(box) == [2]

    def test_bool_and_iter(self):
        box = Mailbox("m")
        assert not box
        box.push("x")
        assert box and list(box) == ["x"]
