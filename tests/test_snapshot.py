"""Engine + replay snapshot/restore: the scale path's checkpoint layer.

The contract under test is *bit-identity*: a run resumed from a
checkpoint must finish with exactly the simulated clock (and engine
completion counts) of the uninterrupted run — not approximately, since
the whole point is that warm-started sweep points are indistinguishable
from cold ones.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError, SimulationError
from repro.nas import dt_app, dt_graph
from repro.offline import (load_checkpoint, record_trace, replay_trace,
                           resume_replay, save_checkpoint)
from repro.platforms import griffon
from repro.smpi import SmpiConfig
from repro.surf import cluster
from repro.surf.engine import SNAPSHOT_VERSION, Engine


def pingpong(mpi, size=200_000, reps=4):
    comm = mpi.COMM_WORLD
    buf = np.zeros(size, dtype=np.uint8)
    for _ in range(reps):
        if mpi.rank == 0:
            comm.Send(buf, 1, 0)
            comm.Recv(buf, 1, 0)
        else:
            comm.Recv(buf, 0, 0)
            comm.Send(buf, 0, 0)
    return mpi.wtime()


def overlap_app(mpi):
    """Nonblocking overlap: checkpoints cut through in-flight transfers."""
    from repro.smpi import request as rq

    comm = mpi.COMM_WORLD
    n = mpi.size
    right = (mpi.rank + 1) % n
    left = (mpi.rank - 1) % n
    for rep in range(3):
        rr = comm.Irecv(np.zeros(100_000, dtype=np.uint8), left, rep)
        rs = comm.Isend(np.zeros(100_000, dtype=np.uint8), right, rep)
        mpi.execute(5e8)
        rq.waitall([rr, rs])
    return mpi.wtime()


class TestEngineSnapshot:
    """The engine layer alone: solver arrays, heap, actions, profiles."""

    def _mid_run_engine(self):
        engine = Engine(cluster("es", 4))
        acts = [
            engine.communicate("node-0", "node-1", 1_000_000, "a"),
            engine.communicate("node-2", "node-3", 500_000, "b"),
            engine.execute(engine.platform.host("node-1"), 2e9, "c"),
            engine.sleep(0.5, "d"),
        ]
        engine.step()  # finish latency phases, get real progress
        return engine, acts

    def test_snapshot_roundtrips_clock_and_actions(self):
        engine, _ = self._mid_run_engine()
        snap = engine.snapshot()
        assert snap["version"] == SNAPSHOT_VERSION
        restored, actions = Engine.restore(cluster("es", 4), snap)
        assert restored.now == engine.now
        assert set(restored.pending) == set(engine.pending)
        for aid, action in engine.pending.items():
            twin = actions[aid]
            assert twin.remaining == action.remaining
            assert twin.latency_remaining == action.latency_remaining
            assert twin.rate == action.rate
            assert twin.state is action.state

    def test_restored_engine_finishes_identically(self):
        engine, _ = self._mid_run_engine()
        snap = engine.snapshot()
        restored, _ = Engine.restore(cluster("es", 4), snap)
        while engine.poll_progress():
            engine.step()
        while restored.poll_progress():
            restored.step()
        assert restored.now == engine.now
        assert (restored.stats.actions_completed
                == engine.stats.actions_completed)

    def test_snapshot_survives_json(self):
        import json

        engine, _ = self._mid_run_engine()
        snap = json.loads(json.dumps(engine.snapshot()))
        restored, _ = Engine.restore(cluster("es", 4), snap)
        while engine.poll_progress():
            engine.step()
        while restored.poll_progress():
            restored.step()
        assert restored.now == engine.now

    def test_restore_rejects_other_versions(self):
        engine, _ = self._mid_run_engine()
        snap = engine.snapshot()
        snap["version"] = SNAPSHOT_VERSION + 1
        with pytest.raises(SimulationError):
            Engine.restore(cluster("es", 4), snap)


class TestReplayCheckpoint:
    def test_checkpoint_run_completes_like_cold_run(self):
        """Arming a checkpoint must not perturb the run it captures."""
        _online, trace = record_trace(pingpong, 2, griffon(2))
        cold = replay_trace(trace, griffon(2))
        armed = replay_trace(trace, griffon(2),
                             checkpoint_at=cold.simulated_time / 2)
        assert armed.simulated_time == cold.simulated_time
        assert armed.checkpoint is not None

    def test_resume_is_bit_identical(self):
        _online, trace = record_trace(pingpong, 2, griffon(2))
        cold = replay_trace(trace, griffon(2))
        ck = replay_trace(trace, griffon(2),
                          checkpoint_at=cold.simulated_time / 2).checkpoint
        warm = resume_replay(trace, griffon(2), ck)
        assert warm.simulated_time == cold.simulated_time
        assert warm.stats.actions_completed <= cold.stats.actions_completed

    def test_resume_fuzz_random_cut_points(self):
        """Bit-identity must hold wherever the cut lands (incl. mid-comm)."""
        import random

        rng = random.Random(0xC0FFEE)
        _online, trace = record_trace(overlap_app, 4, griffon(4))
        cold = replay_trace(trace, griffon(4))
        for _ in range(6):
            frac = rng.uniform(0.05, 0.95)
            result = replay_trace(
                trace, griffon(4),
                checkpoint_at=cold.simulated_time * frac)
            assert result.simulated_time == cold.simulated_time
            ck = result.checkpoint
            if ck is None:
                continue  # cut landed after the last quiescent point
            warm = resume_replay(trace, griffon(4), ck)
            assert warm.simulated_time == cold.simulated_time, frac

    def test_resume_dt_graph(self):
        """A real task-graph workload (NAS DT) across a checkpoint."""
        graph = dt_graph("BH", "S")
        _online, trace = record_trace(
            dt_app, graph.n_ranks, griffon(graph.n_ranks),
            app_args=(graph,))
        cold = replay_trace(trace, griffon(graph.n_ranks))
        ck = replay_trace(
            trace, griffon(graph.n_ranks),
            checkpoint_at=cold.simulated_time * 0.4).checkpoint
        assert ck is not None
        warm = resume_replay(trace, griffon(graph.n_ranks), ck)
        assert warm.simulated_time == cold.simulated_time

    def test_disk_round_trip(self, tmp_path):
        _online, trace = record_trace(pingpong, 2, griffon(2))
        cold = replay_trace(trace, griffon(2))
        ck = replay_trace(trace, griffon(2),
                          checkpoint_at=cold.simulated_time / 3).checkpoint
        path = tmp_path / "run.ckpt.json"
        save_checkpoint(ck, path)
        warm = resume_replay(trace, griffon(2), load_checkpoint(path))
        assert warm.simulated_time == cold.simulated_time

    def test_resume_respects_checkpoint_config(self):
        """The captured protocol config rides in the checkpoint."""
        _online, trace = record_trace(pingpong, 2, griffon(2),
                                      app_args=(200_000, 2))
        config = SmpiConfig(eager_threshold=1024)  # rendezvous path
        cold = replay_trace(trace, griffon(2), config=config)
        ck = replay_trace(trace, griffon(2), config=config,
                          checkpoint_at=cold.simulated_time / 2).checkpoint
        warm = resume_replay(trace, griffon(2), ck)
        assert warm.simulated_time == cold.simulated_time

    def test_checkpoint_rejects_tracing(self):
        _online, trace = record_trace(pingpong, 2, griffon(2))
        with pytest.raises(ConfigError):
            replay_trace(trace, griffon(2),
                         config=SmpiConfig(tracing=True),
                         checkpoint_at=0.001)

    def test_checkpoint_rejects_watchdogs(self):
        _online, trace = record_trace(pingpong, 2, griffon(2))
        with pytest.raises(ConfigError):
            replay_trace(trace, griffon(2),
                         config=SmpiConfig(comm_timeout=10.0),
                         checkpoint_at=0.001)

    def test_resume_rejects_wrong_trace(self):
        _online, trace = record_trace(pingpong, 2, griffon(2))
        cold = replay_trace(trace, griffon(2))
        ck = replay_trace(trace, griffon(2),
                          checkpoint_at=cold.simulated_time / 2).checkpoint
        _other_online, other = record_trace(pingpong, 2, griffon(2),
                                            app_args=(100, 1))
        with pytest.raises(ConfigError):
            resume_replay(other, griffon(2), ck)

    def test_warm_replay_through_snapshot_store(self, tmp_path):
        """Miss captures+stores; hit resumes; both match the cold clock."""
        from repro.offline import warm_replay
        from repro.sweep.cache import SnapshotStore

        _online, trace = record_trace(pingpong, 2, griffon(2))
        cold = replay_trace(trace, griffon(2))
        store = SnapshotStore(tmp_path / "cache")
        cut = cold.simulated_time / 2

        miss = warm_replay(trace, griffon(2), cut, store)
        assert miss.simulated_time == cold.simulated_time
        assert len(store) == 1

        hit = warm_replay(trace, griffon(2), cut, store)
        assert hit.simulated_time == cold.simulated_time
        # restored stats continue the captured counters: totals match the
        # uninterrupted run even though the prefix was never re-simulated
        assert hit.stats.actions_completed == cold.stats.actions_completed
        # the hit path resumed (no fresh capture) and left the store alone
        assert hit.checkpoint is None
        assert len(store) == 1

    def test_snapshot_store_key_tracks_config_and_cut(self, tmp_path):
        from repro.sweep.cache import SnapshotStore

        _online, trace = record_trace(pingpong, 2, griffon(2))
        store = SnapshotStore(tmp_path / "cache")
        base = store.key_for(trace, griffon(2), SmpiConfig(), 0.5)
        assert store.key_for(trace, griffon(2), SmpiConfig(), 0.5) == base
        assert store.key_for(trace, griffon(2), SmpiConfig(), 0.25) != base
        assert store.key_for(trace, griffon(2),
                             SmpiConfig(eager_threshold=1), 0.5) != base

    def test_late_checkpoint_yields_none(self):
        """A cut date past the end of the run simply never fires."""
        _online, trace = record_trace(pingpong, 2, griffon(2))
        cold = replay_trace(trace, griffon(2))
        result = replay_trace(trace, griffon(2),
                              checkpoint_at=cold.simulated_time * 10)
        assert result.simulated_time == cold.simulated_time
        assert result.checkpoint is None
