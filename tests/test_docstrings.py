"""Docstring-coverage gate for the public API of ``src/repro``.

Walks every module's AST and checks that the fraction of documented
public definitions (modules, public classes, and public functions or
methods reachable through public scopes; dunders are exempt) never drops
below the recorded baseline.  New code should arrive documented: when
coverage rises meaningfully, ratchet ``BASELINE`` up to lock it in.
"""

from __future__ import annotations

import ast
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: minimum fraction of documented public definitions (current: ~0.78)
BASELINE = 0.75


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _collect(tree: ast.Module, module: str):
    """Yield ``(qualname, has_docstring)`` for the module's public defs."""
    yield module, ast.get_docstring(tree) is not None

    def walk(node, prefix: str, public_scope: bool):
        for child in ast.iter_child_nodes(node):
            if not isinstance(child, (ast.ClassDef, ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                continue
            name = child.name
            qual = f"{prefix}.{name}"
            if public_scope and _is_public(name):
                yield qual, ast.get_docstring(child) is not None
            # only classes open a new documentable scope (methods);
            # functions nested in functions are implementation detail
            yield from walk(child, qual,
                            public_scope and _is_public(name)
                            and isinstance(child, ast.ClassDef))

    yield from walk(tree, module, True)


def test_public_api_docstring_coverage_meets_baseline():
    entries = []
    for path in sorted(SRC.rglob("*.py")):
        module = str(path.relative_to(SRC.parent)).replace("/", ".")[:-3]
        tree = ast.parse(path.read_text(encoding="utf-8"))
        entries.extend(_collect(tree, module))
    assert entries, f"no python sources found under {SRC}"
    documented = sum(1 for _, has in entries if has)
    coverage = documented / len(entries)
    missing = [qual for qual, has in entries if not has]
    assert coverage >= BASELINE, (
        f"public docstring coverage fell to {coverage:.1%} "
        f"({documented}/{len(entries)}), below the {BASELINE:.0%} gate; "
        f"first undocumented: {missing[:10]}"
    )


def test_every_module_has_a_docstring():
    bare = []
    for path in sorted(SRC.rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        if ast.get_docstring(tree) is None:
            bare.append(str(path.relative_to(SRC.parent)))
    assert not bare, f"modules without a module docstring: {bare}"
