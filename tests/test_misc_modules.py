"""Coverage for the support modules: rng, log, buffer, status, constants,
config, actions."""

from __future__ import annotations

import logging
import math

import numpy as np
import pytest

from repro import rng as rng_mod
from repro.errors import ConfigError, MpiError, SimulationError
from repro.log import bind_clock, get_logger, set_verbosity
from repro.smpi import DOUBLE, INT, SmpiConfig, constants
from repro.smpi.buffer import BufferSpec, pack_object, resolve, unpack_object
from repro.smpi.status import Status
from repro.surf.action import (
    Action,
    ActionState,
    ComputeAction,
    NetworkAction,
    SleepAction,
)
from repro.surf.resources import Host, Link


class TestRng:
    def test_default_generator_reproducible(self):
        a = rng_mod.generator().random(4)
        b = rng_mod.generator().random(4)
        np.testing.assert_array_equal(a, b)

    def test_seeded_generator_differs(self):
        a = rng_mod.generator(1).random(4)
        b = rng_mod.generator(2).random(4)
        assert not np.array_equal(a, b)

    def test_substreams_independent_and_stable(self):
        a1 = rng_mod.substream(7, "alpha").random(4)
        a2 = rng_mod.substream(7, "alpha").random(4)
        b = rng_mod.substream(7, "beta").random(4)
        np.testing.assert_array_equal(a1, a2)
        assert not np.array_equal(a1, b)

    def test_substream_label_path(self):
        a = rng_mod.substream(7, "x", 1).random(2)
        b = rng_mod.substream(7, "x", 2).random(2)
        assert not np.array_equal(a, b)


class TestLog:
    def test_logger_namespace(self):
        logger = get_logger("surf")
        assert logger.name == "repro.surf"

    def test_set_verbosity(self):
        set_verbosity("DEBUG")
        assert logging.getLogger("repro").level == logging.DEBUG
        set_verbosity(logging.WARNING)

    def test_clock_binding(self):
        from repro.log import _SimClockFilter

        record = logging.LogRecord("repro.test", logging.WARNING, __file__, 1,
                                   "hello", (), None)
        bind_clock(lambda: 12.5)
        try:
            assert _SimClockFilter().filter(record)
            assert record.simtime == 12.5
        finally:
            bind_clock(None)
        assert _SimClockFilter().filter(record)
        assert record.simtime == 0.0


class TestBufferSpec:
    def test_resolve_plain_array(self):
        spec = resolve(np.zeros(5))
        assert spec.count == 5 and spec.datatype is DOUBLE
        assert spec.nbytes == 40

    def test_resolve_with_count(self):
        spec = resolve([np.zeros(10, dtype=np.int32), 4])
        assert spec.count == 4 and spec.datatype is INT

    def test_resolve_with_count_and_type(self):
        spec = resolve([np.zeros(10, dtype=np.int32), 4, INT])
        assert spec.count == 4

    def test_resolve_with_type_only(self):
        spec = resolve([np.zeros(8, dtype=np.int32), INT])
        assert spec.count == 8

    def test_resolve_rejects_junk_extras(self):
        with pytest.raises(MpiError):
            resolve([np.zeros(2), "four"])
        with pytest.raises(MpiError):
            resolve([])
        with pytest.raises(MpiError):
            resolve([np.zeros(2), 1, INT, 9])

    def test_resolve_rejects_negative_count(self):
        with pytest.raises(MpiError):
            resolve([np.zeros(2), -1])

    def test_unpack_overflow_is_truncation_error(self):
        spec = BufferSpec(np.zeros(2), 2, DOUBLE)
        too_much = np.zeros(100, dtype=np.uint8)
        with pytest.raises(MpiError):
            spec.unpack(too_much)

    def test_unpack_partial_message(self):
        target = np.zeros(4)
        spec = BufferSpec(target, 4, DOUBLE)
        spec.unpack(DOUBLE.pack(np.array([1.0, 2.0]), 2))
        assert target.tolist() == [1.0, 2.0, 0.0, 0.0]

    def test_unpack_non_integral_count_rejected(self):
        spec = BufferSpec(np.zeros(4), 4, DOUBLE)
        with pytest.raises(MpiError):
            spec.unpack(np.zeros(12, dtype=np.uint8))  # 1.5 doubles

    def test_object_roundtrip(self):
        payload = {"a": [1, 2, (3, "four")], "b": None}
        spec = pack_object(payload)
        assert unpack_object(spec.array) == payload


class TestStatus:
    def test_get_count(self):
        status = Status(source=1, tag=2, count_bytes=32)
        assert status.get_count(DOUBLE) == 4
        assert status.get_count(INT) == 8

    def test_get_count_non_integral_is_undefined(self):
        status = Status(count_bytes=10)
        assert status.get_count(DOUBLE) == constants.UNDEFINED

    def test_cancelled_flag(self):
        assert not Status().is_cancelled()
        assert Status(cancelled=True).is_cancelled()


class TestConstants:
    def test_error_strings(self):
        assert constants.error_string(constants.SUCCESS) == "MPI_SUCCESS"
        assert constants.error_string(constants.ERR_TRUNCATE) == "MPI_ERR_TRUNCATE"
        assert "UNKNOWN" in constants.error_string(424242)

    def test_special_values_distinct(self):
        values = {constants.ANY_SOURCE, constants.ANY_TAG, constants.PROC_NULL,
                  constants.ROOT, constants.UNDEFINED}
        # ANY_SOURCE == ANY_TAG (-1) by MPI convention; the rest distinct
        assert len(values) == 4


class TestConfig:
    def test_defaults(self):
        config = SmpiConfig()
        assert config.eager_threshold == 64 * 1024
        assert math.isinf(config.eager_copy_bandwidth)
        assert not config.zero_copy

    def test_with_options_copies(self):
        base = SmpiConfig()
        derived = base.with_options(eager_threshold=1)
        assert derived.eager_threshold == 1
        assert base.eager_threshold == 64 * 1024

    def test_with_options_rejects_unknown(self):
        with pytest.raises(ConfigError):
            SmpiConfig().with_options(warp_drive=True)

    def test_validation(self):
        with pytest.raises(ConfigError):
            SmpiConfig(eager_threshold=-1)
        with pytest.raises(ConfigError):
            SmpiConfig(send_overhead=-1e-6)
        with pytest.raises(ConfigError):
            SmpiConfig(speed_factor=0)

    def test_memory_limit_parses_strings(self):
        config = SmpiConfig(memory_limit="2GiB")
        assert config.memory_limit == 2 * 1024**3

    def test_algorithm_for(self):
        config = SmpiConfig(coll_algorithms={"bcast": "linear"})
        assert config.algorithm_for("bcast") == "linear"
        assert config.algorithm_for("alltoall") == "auto"


class TestActions:
    HOST = Host("h", 1e9)
    LINK = Link("l", 1e8, 1e-4)

    def test_network_action_lifecycle(self):
        action = NetworkAction("n", 1000.0, (self.LINK,), latency=1e-4)
        assert action.state is ActionState.LATENCY
        action.advance(1e-4)
        assert action.state is ActionState.RUNNING
        action.rate = 1e6
        action.advance(1e-3)
        assert action.state is ActionState.DONE

    def test_zero_size_zero_latency_completes_immediately(self):
        action = NetworkAction("z", 0, (), latency=0.0)
        assert action.state is ActionState.DONE

    def test_compute_action_bound_is_core_speed(self):
        action = ComputeAction("c", 1e9, self.HOST)
        assert action.rate_bound == self.HOST.speed

    def test_sleep_action_counts_down(self):
        action = SleepAction("s", 0.5)
        assert action.time_to_completion() == pytest.approx(0.5)
        action.advance(0.5)
        assert action.state is ActionState.DONE

    def test_negative_amount_rejected(self):
        with pytest.raises(SimulationError):
            Action("bad", -1.0)
        with pytest.raises(SimulationError):
            Action("bad", 1.0, latency=-1.0)

    def test_fail_only_pending(self):
        action = SleepAction("s", 0.1)
        action.fail()
        assert action.state is ActionState.FAILED
        done = SleepAction("d", 0)
        done.fail()  # no-op on completed actions
        assert done.state is ActionState.DONE

    def test_stalled_action_reports_inf(self):
        action = NetworkAction("n", 1000.0, (self.LINK,), latency=0.0)
        action.rate = 0.0
        assert math.isinf(action.time_to_completion())
