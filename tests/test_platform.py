"""Tests for platforms, builders, routing and XML round-tripping."""

from __future__ import annotations

import math

import pytest

from repro.errors import PlatformError, RoutingError
from repro.surf import (
    Host,
    Link,
    Platform,
    SharingPolicy,
    cluster,
    multi_cabinet_cluster,
)
from repro.surf.platform_xml import (
    dumps_platform_xml,
    loads_platform_xml,
    save_platform_xml,
    load_platform_xml,
)


class TestResources:
    def test_link_parses_units(self):
        link = Link("l", "1Gbps", "50us")
        assert link.bandwidth == pytest.approx(125e6)
        assert link.latency == pytest.approx(5e-5)

    def test_link_rejects_bad_values(self):
        with pytest.raises(PlatformError):
            Link("l", 0)
        with pytest.raises(PlatformError):
            Link("l", 100, -1)

    def test_host_parses_units(self):
        host = Host("h", "2.5Gf", cores=8, memory="16GiB")
        assert host.speed == pytest.approx(2.5e9)
        assert host.cores == 8
        assert host.memory == 16 * 1024**3

    def test_host_rejects_bad_values(self):
        with pytest.raises(PlatformError):
            Host("h", 0)
        with pytest.raises(PlatformError):
            Host("h", 1e9, cores=0)

    def test_equality_by_name(self):
        assert Link("a", 1.0) == Link("a", 2.0)
        assert Host("a", 1.0) == Host("a", 2.0)
        assert Link("a", 1.0) != Link("b", 1.0)


class TestPlatform:
    def test_duplicate_host_rejected(self):
        platform = Platform("p")
        platform.add_host(Host("h", 1e9))
        with pytest.raises(PlatformError):
            platform.add_host(Host("h", 1e9))

    def test_duplicate_link_rejected(self):
        platform = Platform("p")
        platform.add_link(Link("l", 1e6))
        with pytest.raises(PlatformError):
            platform.add_link(Link("l", 1e6))

    def test_route_requires_known_hosts(self):
        platform = Platform("p")
        platform.add_host(Host("a", 1e9))
        with pytest.raises(PlatformError):
            platform.add_route("a", "ghost", [])

    def test_frozen_platform_is_immutable(self):
        platform = cluster("c", 2)
        platform.freeze()
        with pytest.raises(PlatformError):
            platform.add_host(Host("x", 1e9))

    def test_self_route_is_empty(self):
        platform = cluster("c", 2)
        route = platform.route("node-0", "node-0")
        assert len(route) == 0
        assert route.latency == 0
        assert math.isinf(route.bandwidth)

    def test_graph_routing_fallback(self):
        platform = Platform("g")
        for name in ("a", "b", "c"):
            platform.add_host(Host(name, 1e9))
        l_ab = Link("ab", 100e6, "1ms")
        l_bc = Link("bc", 50e6, "2ms")
        platform.connect("a", "b", l_ab)
        platform.connect("b", "c", l_bc)
        route = platform.route("a", "c")
        assert [l.name for l in route.links] == ["ab", "bc"]
        assert route.bandwidth == pytest.approx(50e6)
        assert route.latency == pytest.approx(3e-3)

    def test_no_route_raises(self):
        platform = Platform("g")
        platform.add_host(Host("a", 1e9))
        platform.add_host(Host("b", 1e9))
        with pytest.raises(RoutingError):
            platform.route("a", "b")

    def test_explicit_route_symmetry(self):
        platform = Platform("p")
        platform.add_host(Host("a", 1e9))
        platform.add_host(Host("b", 1e9))
        l1 = Link("l1", 1e6)
        l2 = Link("l2", 1e6)
        platform.add_route("a", "b", [l1, l2], symmetric=True)
        forward = platform.route("a", "b").links
        backward = platform.route("b", "a").links
        assert [l.name for l in backward] == [l.name for l in reversed(forward)]


class TestClusterBuilder:
    def test_host_count_and_names(self):
        platform = cluster("c", 5, prefix="n")
        assert len(platform.hosts) == 5
        assert platform.has_host("n0") and platform.has_host("n4")

    def test_route_crosses_backbone(self):
        platform = cluster("c", 4)
        route = platform.route("node-0", "node-3")
        names = [l.name for l in route.links]
        assert names == ["c-l0", "c-backbone", "c-l3"]

    def test_no_backbone_option(self):
        platform = cluster("c", 4, backbone_bandwidth=None)
        route = platform.route("node-0", "node-3")
        assert len(route.links) == 2

    def test_rejects_empty(self):
        with pytest.raises(PlatformError):
            cluster("c", 0)


class TestMultiCabinet:
    def test_structure(self):
        platform = multi_cabinet_cluster("m", [3, 2])
        assert len(platform.hosts) == 5
        intra = platform.route("node-0", "node-1")
        assert len(intra.links) == 3  # access, cab backbone, access
        inter = platform.route("node-0", "node-4")
        assert len(inter.links) == 7  # + uplinks and core backbone

    def test_rejects_empty_cabinet(self):
        with pytest.raises(PlatformError):
            multi_cabinet_cluster("m", [3, 0])


class TestXml:
    def test_roundtrip_small_cluster(self, tmp_path):
        original = cluster("rt", 3)
        path = tmp_path / "p.xml"
        save_platform_xml(original, path)
        loaded = load_platform_xml(path)
        assert sorted(h.name for h in loaded.hosts) == sorted(
            h.name for h in original.hosts
        )
        for src in original.host_names():
            for dst in original.host_names():
                if src == dst:
                    continue
                a = [l.name for l in original.route(src, dst).links]
                b = [l.name for l in loaded.route(src, dst).links]
                assert a == b

    def test_parse_hosts_links_routes(self):
        xml = """<?xml version="1.0"?>
        <platform version="4">
          <zone id="z" routing="Full">
            <host id="a" speed="1Gf" core="2"/>
            <host id="b" speed="2Gf"/>
            <link id="l" bandwidth="125MBps" latency="50us"/>
            <link id="fat" bandwidth="1.25GBps" latency="10us"
                  sharing_policy="FATPIPE"/>
            <route src="a" dst="b"><link_ctn id="l"/><link_ctn id="fat"/></route>
          </zone>
        </platform>"""
        platform = loads_platform_xml(xml)
        assert platform.host("a").cores == 2
        assert platform.host("b").speed == pytest.approx(2e9)
        route = platform.route("a", "b")
        assert [l.name for l in route.links] == ["l", "fat"]
        assert route.links[1].sharing is SharingPolicy.FATPIPE
        # symmetrical default applies
        assert [l.name for l in platform.route("b", "a").links] == ["fat", "l"]

    def test_parse_cluster_element(self):
        xml = """<platform version="4">
          <zone id="z" routing="Full">
            <cluster id="c" prefix="n-" suffix="" radical="0-3" speed="1Gf"
                     bw="125MBps" lat="50us" bb_bw="1.25GBps" bb_lat="20us"/>
          </zone>
        </platform>"""
        platform = loads_platform_xml(xml)
        assert len(platform.hosts) == 4
        route = platform.route("n-0", "n-3")
        assert len(route.links) == 3

    def test_radical_forms(self):
        from repro.surf.platform_xml import _parse_radical

        assert _parse_radical("0-3") == [0, 1, 2, 3]
        assert _parse_radical("0-2,7,9-10") == [0, 1, 2, 7, 9, 10]
        with pytest.raises(PlatformError):
            _parse_radical("5-2")

    def test_missing_attribute_raises(self):
        with pytest.raises(PlatformError):
            loads_platform_xml(
                '<platform version="4"><zone id="z"><host id="x"/></zone></platform>'
            )

    def test_wrong_root_raises(self):
        with pytest.raises(PlatformError):
            loads_platform_xml("<zone id='z'/>")

    def test_dump_contains_sharing_policy(self):
        platform = Platform("p")
        platform.add_host(Host("a", 1e9))
        platform.add_host(Host("b", 1e9))
        fat = Link("fat", 1e9, 0.0, SharingPolicy.FATPIPE)
        platform.add_route("a", "b", [fat])
        xml = dumps_platform_xml(platform)
        assert 'sharing_policy="FATPIPE"' in xml


class TestLoopbackConfiguration:
    def test_default_loopback_applies_to_every_host(self):
        platform = cluster("lbp", 3, loopback_bandwidth="10GBps")
        for name in platform.host_names():
            route = platform.route(name, name)
            assert [l.name for l in route.links] == ["lbp-loopback"]

    def test_per_host_loopback_overrides_default(self):
        platform = cluster("lbq", 2, loopback_bandwidth="10GBps")
        special = Link("special-lb", "20GBps", "1ns")
        platform.set_loopback(special, host="node-0")
        assert platform.route("node-0", "node-0").links[0].name == "special-lb"
        assert platform.route("node-1", "node-1").links[0].name == "lbq-loopback"

    def test_no_loopback_keeps_empty_self_route(self):
        platform = cluster("lbr", 2)
        assert platform.route("node-0", "node-0").links == ()

    def test_loopback_rejects_unknown_host(self):
        platform = cluster("lbs", 2)
        with pytest.raises(PlatformError):
            platform.set_loopback(Link("x-lb", "1GBps", "1ns"), host="nope")

    def test_loopback_link_is_fatpipe(self):
        platform = cluster("lbt", 2, loopback_bandwidth="10GBps")
        assert platform.link("lbt-loopback").sharing is SharingPolicy.FATPIPE


class TestSplitDuplexCluster:
    def test_routes_cross_up_then_down(self):
        platform = cluster("sd", 3, backbone_bandwidth=None, split_duplex=True)
        route = platform.route("node-0", "node-2")
        assert [l.name for l in route.links] == ["sd-l0-up", "sd-l2-down"]

    def test_opposite_directions_use_disjoint_links(self):
        platform = cluster("sd2", 2, backbone_bandwidth=None,
                           split_duplex=True)
        forward = {l.name for l in platform.route("node-0", "node-1").links}
        backward = {l.name for l in platform.route("node-1", "node-0").links}
        assert not (forward & backward)

    def test_backbone_still_shared_between_directions(self):
        platform = cluster("sd3", 2, split_duplex=True)
        forward = [l.name for l in platform.route("node-0", "node-1").links]
        assert forward == ["sd3-l0-up", "sd3-backbone", "sd3-l1-down"]

    def test_plain_cluster_keeps_single_access_links(self):
        platform = cluster("sd4", 2)
        forward = [l.name for l in platform.route("node-0", "node-1").links]
        assert forward == ["sd4-l0", "sd4-backbone", "sd4-l1"]
