"""Smoke tests: the shipped examples must run and report success."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "results verified" in out


def test_checkpoint_io():
    out = run_example("checkpoint_io.py")
    assert "✓" in out and "overhead" in out


def test_offline_replay():
    out = run_example("offline_replay.py")
    assert "matches on-line exactly ✓" in out
    assert "refused" in out


def test_stencil_sampling():
    out = run_example("stencil_sampling.py")
    assert "full execution" in out and "RAM folding" in out


@pytest.mark.slow
def test_calibrate_and_compare():
    out = run_example("calibrate_and_compare.py")
    assert "piecewise" in out and "exported" in out


@pytest.mark.slow
def test_whatif_capacity_planning():
    out = run_example("whatif_capacity_planning.py")
    assert "crossover" in out


@pytest.mark.slow
def test_nas_dt_demo():
    out = run_example("nas_dt_demo.py", timeout=400)
    assert "verified" in out and "folded" in out
