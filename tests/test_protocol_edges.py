"""Edge cases of the point-to-point protocol and its configuration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.smpi import SmpiConfig, smpirun
from repro.smpi import request as rq
from repro.surf import cluster


def run(app, n=2, config=None):
    return smpirun(app, n, cluster("pe", max(n, 2)), config=config)


class TestSelfMessaging:
    def test_isend_to_self(self):
        def app(mpi):
            comm = mpi.COMM_WORLD
            send = comm.Isend(np.array([42.0]), mpi.rank, 7)
            buf = np.zeros(1)
            comm.Recv(buf, mpi.rank, 7)
            rq.wait(send)
            return buf[0]

        assert run(app, 1).returns == [42.0]

    def test_sendrecv_with_self(self):
        def app(mpi):
            comm = mpi.COMM_WORLD
            out = np.zeros(1)
            comm.Sendrecv(np.array([float(mpi.rank)]), mpi.rank, 1,
                          out, mpi.rank, 1)
            return out[0]

        result = run(app, 2)
        assert result.returns == [0.0, 1.0]

    def test_rendezvous_to_self_with_posted_recv(self):
        config = SmpiConfig(eager_threshold=8)

        def app(mpi):
            comm = mpi.COMM_WORLD
            buf = np.zeros(100, dtype=np.uint8)
            recv = comm.Irecv(buf, mpi.rank, 0)
            comm.Send(np.arange(100, dtype=np.uint8), mpi.rank, 0)
            rq.wait(recv)
            return int(buf.sum())

        expected = int(np.arange(100, dtype=np.uint8).sum())
        assert run(app, 1, config=config).returns == [expected]


class TestThresholdEdges:
    def test_threshold_zero_makes_everything_rendezvous(self):
        config = SmpiConfig(eager_threshold=0)

        def app(mpi):
            comm = mpi.COMM_WORLD
            if mpi.rank == 0:
                comm.Send(np.zeros(1, dtype=np.uint8), 1, 0)
                return mpi.wtime()
            mpi.sleep(0.5)
            comm.Recv(np.zeros(1, dtype=np.uint8), 0, 0)

        result = run(app, 2, config=config)
        assert result.returns[0] > 0.5  # sender held for the receiver

    def test_zero_byte_message_is_eager_even_at_threshold_zero(self):
        config = SmpiConfig(eager_threshold=0)

        def app(mpi):
            comm = mpi.COMM_WORLD
            if mpi.rank == 0:
                comm.Send(np.zeros(0, dtype=np.uint8), 1, 0)
                return mpi.wtime()
            mpi.sleep(0.5)
            comm.Recv(np.zeros(0, dtype=np.uint8), 0, 0)

        result = run(app, 2, config=config)
        assert result.returns[0] < 0.1

    def test_exact_threshold_is_eager(self):
        config = SmpiConfig(eager_threshold=100)

        def app(mpi):
            comm = mpi.COMM_WORLD
            if mpi.rank == 0:
                comm.Send(np.zeros(100, dtype=np.uint8), 1, 0)
                return mpi.wtime()
            mpi.sleep(0.3)
            comm.Recv(np.zeros(100, dtype=np.uint8), 0, 0)

        assert run(app, 2, config=config).returns[0] < 0.1


class TestConfigEffects:
    def _one_way(self, config, nbytes=100_000):
        def app(mpi):
            comm = mpi.COMM_WORLD
            if mpi.rank == 0:
                comm.Send(np.zeros(nbytes, dtype=np.uint8), 1, 0)
            else:
                comm.Recv(np.zeros(nbytes, dtype=np.uint8), 0, 0)
            return mpi.wtime()

        return max(run(app, 2, config=config).returns)

    def test_handshake_rtts_adds_latency(self):
        base = SmpiConfig(eager_threshold=1024, handshake_rtts=0.0)
        chatty = base.with_options(handshake_rtts=5.0)
        assert self._one_way(chatty) > self._one_way(base)

    def test_send_overhead_adds_latency(self):
        base = SmpiConfig()
        heavy = base.with_options(send_overhead=0.01)
        assert self._one_way(heavy) >= self._one_way(base) + 0.009

    def test_wire_efficiency_slows_transfers(self):
        base = SmpiConfig(eager_threshold=0)
        slow = base.with_options(wire_efficiency=0.5)
        fast_t = self._one_way(base, nbytes=2_000_000)
        slow_t = self._one_way(slow, nbytes=2_000_000)
        assert slow_t > 1.5 * fast_t

    def test_test_delay_paces_poll_loops(self):
        config = SmpiConfig(test_delay=1e-3)

        def app(mpi):
            comm = mpi.COMM_WORLD
            if mpi.rank == 0:
                mpi.sleep(0.05)
                comm.Send(np.zeros(1), 1, 0)
            else:
                req = comm.Irecv(np.zeros(1), 0, 0)
                polls = 0
                while not rq.test(req)[0]:
                    polls += 1
                return polls

        polls = run(app, 2, config=config).returns[1]
        assert 10 <= polls <= 100  # ~50 ms / 1 ms per poll


class TestContextIsolation:
    def test_same_tag_different_comms_do_not_match(self):
        def app(mpi):
            comm = mpi.COMM_WORLD
            dup = comm.Dup()
            if mpi.rank == 0:
                comm.Send(np.array([1.0]), 1, 5)
                dup.Send(np.array([2.0]), 1, 5)
            else:
                a, b = np.zeros(1), np.zeros(1)
                # receive from the dup FIRST: must not steal comm's message
                dup.Recv(b, 0, 5)
                comm.Recv(a, 0, 5)
                return (a[0], b[0])

        assert run(app, 2).returns[1] == (1.0, 2.0)

    def test_collective_and_pt2pt_planes_are_isolated(self):
        def app(mpi):
            comm = mpi.COMM_WORLD
            from repro.smpi.coll.util import coll_tag

            tag = coll_tag("bcast")  # deliberately collide with coll tags
            if mpi.rank == 0:
                comm.Send(np.array([9.0]), 1, tag)
            buf = np.array([5.0]) if mpi.rank == 0 else np.zeros(1)
            comm.Bcast(buf, root=0)
            if mpi.rank == 1:
                mine = np.zeros(1)
                comm.Recv(mine, 0, tag)
                return (buf[0], mine[0])
            return buf[0]

        result = run(app, 2)
        assert result.returns[0] == 5.0
        assert result.returns[1] == (5.0, 9.0)
