"""Tests for the off-line (trace replay) simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.nas import dt_app, dt_graph
from repro.offline import TiEvent, TiTrace, record_trace, replay_trace
from repro.platforms import griffon
from repro.smpi import SmpiConfig
from repro.surf import cluster


def pingpong(mpi, size=10_000, reps=2):
    comm = mpi.COMM_WORLD
    buf = np.zeros(size, dtype=np.uint8)
    for _ in range(reps):
        if mpi.rank == 0:
            comm.Send(buf, 1, 0)
            comm.Recv(buf, 1, 0)
        else:
            comm.Recv(buf, 0, 0)
            comm.Send(buf, 0, 0)
    return mpi.wtime()


class TestRecording:
    def test_trace_captures_messages_and_compute(self):
        def app(mpi):
            comm = mpi.COMM_WORLD
            mpi.execute(5e6)
            if mpi.rank == 0:
                comm.Send(np.zeros(100, dtype=np.uint8), 1, 3)
            else:
                comm.Recv(np.zeros(100, dtype=np.uint8), 0, 3)

        _result, trace = record_trace(app, 2, cluster("rec", 2))
        assert trace.n_ranks == 2
        assert trace.total_messages() == 1
        assert trace.total_bytes() == 100
        assert trace.total_flops() == pytest.approx(1e7)
        kinds0 = [e.kind for e in trace.events[0]]
        assert kinds0 == ["compute", "send", "wait"]
        kinds1 = [e.kind for e in trace.events[1]]
        assert kinds1 == ["compute", "recv", "wait"]

    def test_collectives_recorded_as_pt2pt(self):
        def app(mpi):
            buf = np.zeros(10)
            mpi.COMM_WORLD.Bcast(buf, root=0)

        _result, trace = record_trace(app, 4, cluster("rc", 4))
        # binomial bcast on 4 ranks: 3 messages
        assert trace.total_messages() == 3

    def test_meta_records_provenance(self):
        result, trace = record_trace(pingpong, 2, griffon(2))
        assert trace.meta["recorded_on"] == "griffon"
        assert trace.meta["recorded_simulated_time"] == result.simulated_time

    def test_json_roundtrip(self, tmp_path):
        _result, trace = record_trace(pingpong, 2, cluster("js", 2))
        path = tmp_path / "trace.json"
        trace.save(path)
        loaded = TiTrace.load(path)
        assert loaded.n_ranks == trace.n_ranks
        assert loaded.total_bytes() == trace.total_bytes()
        assert [e.kind for e in loaded.events[0]] == [
            e.kind for e in trace.events[0]
        ]

    def test_rejects_foreign_json(self):
        with pytest.raises(ConfigError):
            TiTrace.from_json('{"format": "something-else"}')

    def test_event_kind_validated(self):
        with pytest.raises(ConfigError):
            TiEvent("teleport", ())


class TestReplay:
    def test_replay_reproduces_online_time_exactly(self):
        """The strongest cross-check: same platform + config => same clock."""
        online, trace = record_trace(pingpong, 2, griffon(2))
        replayed = replay_trace(trace, griffon(2))
        assert replayed.simulated_time == pytest.approx(
            online.simulated_time, rel=1e-12
        )

    def test_replay_dt_graph_exact(self):
        graph = dt_graph("BH", "S")
        online, trace = record_trace(
            dt_app, graph.n_ranks, griffon(graph.n_ranks), app_args=(graph,)
        )
        replayed = replay_trace(trace, griffon(graph.n_ranks))
        assert replayed.simulated_time == pytest.approx(
            online.simulated_time, rel=1e-12
        )

    def test_replay_on_faster_platform_is_faster(self):
        _online, trace = record_trace(pingpong, 2, cluster("a", 2))
        slow = replay_trace(trace, cluster("slow", 2,
                                           link_bandwidth="12.5MBps"))
        fast = replay_trace(trace, cluster("fast", 2,
                                           link_bandwidth="1.25GBps"))
        assert fast.simulated_time < slow.simulated_time

    def test_replay_with_different_protocol_config(self):
        _online, trace = record_trace(
            pingpong, 2, cluster("p", 2), app_args=(200_000, 1)
        )
        eager = replay_trace(trace, cluster("pe", 2),
                             config=SmpiConfig(eager_threshold=1 << 22))
        rendezvous = replay_trace(trace, cluster("pr", 2),
                                  config=SmpiConfig(eager_threshold=1024))
        # 200 kB messages: rendezvous pays the handshake
        assert rendezvous.simulated_time > eager.simulated_time

    def test_replay_rejects_wrong_rank_count(self):
        """The paper's §2 point: a trace is tied to its configuration."""
        _online, trace = record_trace(pingpong, 2, cluster("w", 2))
        with pytest.raises(ConfigError):
            replay_trace(trace, cluster("w2", 4), n_ranks=4)

    def test_replay_does_not_need_the_application(self):
        """Replay moves no payload and runs no app code: memory stays flat."""
        def hungry(mpi):
            data = mpi.malloc(500_000)  # 4 MB per rank
            out = np.zeros(1)
            mpi.COMM_WORLD.Allreduce(np.array([data.sum()]), out)
            mpi.free(data)

        online, trace = record_trace(hungry, 4, cluster("m", 4))
        replayed = replay_trace(trace, cluster("m2", 4))
        assert replayed.memory.total_peak < online.memory.total_peak
        assert replayed.simulated_time == pytest.approx(
            online.simulated_time, rel=1e-12
        )

    def test_nonblocking_overlap_preserved(self):
        """A trace of isend-compute-wait must keep the overlap timing."""
        from repro.smpi import request as rq

        def app(mpi):
            comm = mpi.COMM_WORLD
            if mpi.rank == 0:
                req = comm.Isend(np.zeros(50_000, dtype=np.uint8), 1, 0)
                mpi.execute(2e8)  # overlaps the transfer
                rq.wait(req)
            else:
                rq.wait(comm.Irecv(np.zeros(50_000, dtype=np.uint8), 0, 0))
            return mpi.wtime()

        online, trace = record_trace(app, 2, cluster("ov", 2))
        replayed = replay_trace(trace, cluster("ov2", 2))
        assert replayed.simulated_time == pytest.approx(
            online.simulated_time, rel=1e-12
        )

    def test_waitany_choice_replayed(self):
        from repro.smpi import request as rq

        def app(mpi):
            comm = mpi.COMM_WORLD
            if mpi.rank == 2:
                reqs = [
                    comm.Irecv(np.zeros(1), i, 0) for i in range(2)
                ]
                idx, _ = rq.waitany(reqs)
                rq.wait(reqs[1 - idx])
                return idx
            mpi.sleep(0.2 if mpi.rank == 0 else 0.0)
            comm.Send(np.zeros(1), 2, 0)

        online, trace = record_trace(app, 3, cluster("wa", 3))
        replayed = replay_trace(trace, cluster("wa2", 3))
        # note: mpi.sleep is not traced, so times differ; the replay must
        # still terminate and keep the message count
        assert replayed.stats.actions_completed > 0
        del online
