"""Property-based fuzzing of whole simulations.

These tests generate random applications (message patterns, collective
sequences, buffer sizes) and assert semantic invariants that must hold
for *any* program: on-line results equal a direct computation, simulated
clocks never run backwards, both kernels deliver identical data, traces
replay exactly.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.packetsim import PacketEngine
from repro.smpi import SUM, SmpiConfig, smpirun
from repro.surf import cluster

_FUZZ = settings(max_examples=20, deadline=None)


# -- random pt2pt exchanges -----------------------------------------------------------------

exchange = st.tuples(
    st.integers(0, 3),  # src
    st.integers(0, 3),  # dst
    st.integers(1, 5000),  # bytes
    st.integers(0, 3),  # tag
)


@given(st.lists(exchange, min_size=1, max_size=12), st.integers(0, 1000))
@_FUZZ
def test_random_message_pattern_delivers_exact_payloads(pattern, seed):
    """Any (deadlock-free) pattern delivers every payload bit-exactly.

    The pattern is made deadlock-free by construction: receivers post
    nonblocking receives first, then all sends, then everyone waits.
    """
    pattern = [(s, d, n, t) for (s, d, n, t) in pattern if s != d]
    if not pattern:
        return
    rng = np.random.default_rng(seed)
    payloads = [
        rng.integers(0, 256, n).astype(np.uint8) for (_s, _d, n, _t) in pattern
    ]

    def app(mpi):
        from repro.smpi import request as rq

        comm = mpi.COMM_WORLD
        recvs = []
        bufs = []
        for index, (src, dst, nbytes, tag) in enumerate(pattern):
            if mpi.rank == dst:
                buf = np.zeros(nbytes, dtype=np.uint8)
                # tag disambiguated by index so duplicates stay ordered
                recvs.append(comm.Irecv(buf, src, tag * 100 + index))
                bufs.append((index, buf))
        sends = []
        for index, (src, dst, nbytes, tag) in enumerate(pattern):
            if mpi.rank == src:
                sends.append(
                    comm.Isend(payloads[index], dst, tag * 100 + index)
                )
        rq.waitall(recvs + sends)
        return {i: buf.tobytes() for i, buf in bufs}

    result = smpirun(app, 4, cluster("fz", 4))
    for index, (_src, dst, _n, _tag) in enumerate(pattern):
        got = result.returns[dst][index]
        assert got == payloads[index].tobytes()


@given(st.lists(exchange, min_size=1, max_size=8), st.integers(0, 100))
@_FUZZ
def test_both_kernels_deliver_identical_data(pattern, seed):
    """Flow and packet kernels must agree on *data*, whatever the timing."""
    pattern = [(s, d, n, t) for (s, d, n, t) in pattern if s != d]
    if not pattern:
        return
    rng = np.random.default_rng(seed)
    payloads = [
        rng.integers(0, 256, n).astype(np.uint8) for (_s, _d, n, _t) in pattern
    ]

    def app(mpi):
        from repro.smpi import request as rq

        comm = mpi.COMM_WORLD
        recvs, bufs, sends = [], [], []
        for index, (src, dst, nbytes, tag) in enumerate(pattern):
            if mpi.rank == dst:
                buf = np.zeros(nbytes, dtype=np.uint8)
                recvs.append(comm.Irecv(buf, src, index))
                bufs.append(buf)
        for index, (src, dst, nbytes, tag) in enumerate(pattern):
            if mpi.rank == src:
                sends.append(comm.Isend(payloads[index], dst, index))
        rq.waitall(recvs + sends)
        return b"".join(buf.tobytes() for buf in bufs)

    flow = smpirun(app, 4, cluster("fk", 4))
    packet_platform = cluster("pk", 4)
    packet = smpirun(app, 4, packet_platform,
                     engine=PacketEngine(packet_platform))
    assert flow.returns == packet.returns


# -- random collective sequences ----------------------------------------------------------------

collective_step = st.sampled_from(["allreduce", "bcast", "gather", "alltoall",
                                   "barrier", "scan"])


@given(
    st.lists(collective_step, min_size=1, max_size=5),
    st.integers(2, 6),
    st.integers(1, 40),
)
@_FUZZ
def test_random_collective_sequences_compute_correctly(steps, n_ranks, elems):
    """Any sequence of collectives yields the directly-computed values."""

    def app(mpi):
        comm = mpi.COMM_WORLD
        value = np.arange(elems, dtype=np.float64) + mpi.rank
        checks = []
        for step_no, step in enumerate(steps):
            if step == "allreduce":
                out = np.zeros(elems)
                comm.Allreduce(value, out, op=SUM)
                expected = (
                    np.arange(elems) * mpi.size + sum(range(mpi.size))
                )
                checks.append(np.allclose(out, expected))
            elif step == "bcast":
                buf = value.copy() if mpi.rank == step_no % mpi.size else np.zeros(elems)
                comm.Bcast(buf, root=step_no % mpi.size)
                expected = np.arange(elems) + step_no % mpi.size
                checks.append(np.allclose(buf, expected))
            elif step == "gather":
                recv = np.zeros(mpi.size * elems) if mpi.rank == 0 else None
                comm.Gather(value, recv, root=0)
                if mpi.rank == 0:
                    expected = np.concatenate(
                        [np.arange(elems) + r for r in range(mpi.size)]
                    )
                    checks.append(np.allclose(recv, expected))
            elif step == "alltoall":
                send = np.tile(value, mpi.size)
                recv = np.zeros(mpi.size * elems)
                comm.Alltoall(send, recv)
                expected = np.concatenate(
                    [np.arange(elems) + r for r in range(mpi.size)]
                )
                checks.append(np.allclose(recv, expected))
            elif step == "barrier":
                comm.Barrier()
                checks.append(True)
            elif step == "scan":
                out = np.zeros(elems)
                comm.Scan(value, out, op=SUM)
                expected = (
                    np.arange(elems) * (mpi.rank + 1) + sum(range(mpi.rank + 1))
                )
                checks.append(np.allclose(out, expected))
        return all(checks)

    result = smpirun(app, n_ranks, cluster("fc", n_ranks))
    assert all(result.returns)


# -- timing invariants ----------------------------------------------------------------------------


@given(st.integers(2, 6), st.integers(100, 200_000), st.integers(0, 3))
@_FUZZ
def test_clock_monotone_and_deterministic(n_ranks, nbytes, tag):
    """The same program simulates to the same clock, twice."""

    def app(mpi):
        comm = mpi.COMM_WORLD
        times = [mpi.wtime()]
        comm.Barrier()
        times.append(mpi.wtime())
        if mpi.rank == 0:
            comm.Send(np.zeros(nbytes, dtype=np.uint8), 1, tag)
        elif mpi.rank == 1:
            comm.Recv(np.zeros(nbytes, dtype=np.uint8), 0, tag)
        times.append(mpi.wtime())
        assert times == sorted(times), "clock ran backwards"
        return times[-1]

    a = smpirun(app, n_ranks, cluster("dt1", n_ranks))
    b = smpirun(app, n_ranks, cluster("dt2", n_ranks))
    assert a.returns == b.returns
    assert a.simulated_time == b.simulated_time


@given(st.integers(1, 6), st.floats(1e6, 1e9))
@_FUZZ
def test_compute_time_scales_with_flops(n_ranks, flops):
    def app(mpi):
        mpi.execute(flops)
        return mpi.wtime()

    result = smpirun(app, n_ranks, cluster("ct", n_ranks))
    for t in result.returns:
        assert t == pytest.approx(flops / 1e9)  # 1 Gf hosts


@given(st.lists(st.integers(1, 100_000), min_size=1, max_size=6))
@_FUZZ
def test_offline_replay_matches_online_for_random_chains(sizes):
    """Record/replay equivalence holds for arbitrary send chains."""
    from repro.offline import record_trace, replay_trace

    def app(mpi):
        comm = mpi.COMM_WORLD
        for index, nbytes in enumerate(sizes):
            if mpi.rank == index % 2:
                comm.Send(np.zeros(nbytes, dtype=np.uint8), 1 - mpi.rank, index)
            else:
                comm.Recv(np.zeros(nbytes, dtype=np.uint8), 1 - mpi.rank, index)

    online, trace = record_trace(app, 2, cluster("or1", 2))
    replayed = replay_trace(trace, cluster("or2", 2))
    assert replayed.simulated_time == pytest.approx(
        online.simulated_time, rel=1e-12
    )


# -- incremental vs full re-sharing ---------------------------------------------------


@given(st.lists(exchange, min_size=1, max_size=10), st.integers(0, 50))
@settings(max_examples=15, deadline=None)
def test_incremental_sharing_is_invisible(pattern, seed):
    """For any message pattern, the incremental dirty-set kernel and the
    full re-share kernel produce bit-identical simulated times."""
    from repro.surf import Engine

    pattern = [(s, d, n, t) for (s, d, n, t) in pattern if s != d]
    if not pattern:
        return

    def app(mpi):
        from repro.smpi import request as rq

        comm = mpi.COMM_WORLD
        reqs = []
        for index, (src, dst, nbytes, tag) in enumerate(pattern):
            if mpi.rank == dst:
                buf = np.zeros(nbytes, dtype=np.uint8)
                reqs.append(comm.Irecv(buf, src, tag * 100 + index))
        for index, (src, dst, nbytes, tag) in enumerate(pattern):
            if mpi.rank == src:
                payload = np.full(nbytes, index % 251, dtype=np.uint8)
                reqs.append(comm.Isend(payload, dst, tag * 100 + index))
        rq.waitall(reqs)
        if seed % 2:
            mpi.execute(1e6 * (mpi.rank + 1))
        return mpi.wtime()

    times = {}
    for full in (False, True):
        platform = cluster("inv", 4, split_duplex=bool(seed % 3))
        engine = Engine(platform, full_reshare=full)
        result = smpirun(app, 4, platform, engine=engine)
        times[full] = (result.simulated_time, tuple(result.returns))
    assert times[False] == times[True]
