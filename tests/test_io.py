"""Tests for the MPI-IO extension (paper section 8 future work)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ActorFailure
from repro.smpi import (
    File,
    MODE_APPEND,
    MODE_CREATE,
    MODE_EXCL,
    MODE_RDONLY,
    MODE_RDWR,
    MODE_WRONLY,
    smpirun,
)
from repro.surf import cluster


def run(app, n=4, **kw):
    return smpirun(app, n, cluster("io", n), **kw)


class TestBasicIo:
    def test_write_then_read_roundtrip(self):
        def app(mpi):
            comm = mpi.COMM_WORLD
            fh = File.Open(comm, "data.bin", MODE_CREATE | MODE_RDWR)
            if mpi.rank == 0:
                fh.Write_at(0, np.arange(10, dtype=np.float64))
            comm.Barrier()
            buf = np.zeros(10)
            fh.Read_at(0, buf)
            fh.Close()
            return buf.tolist()

        result = run(app, 2)
        assert result.returns[0] == list(map(float, range(10)))
        assert result.returns[1] == list(map(float, range(10)))

    def test_collective_strided_write(self):
        """The mpi4py tutorial's contiguous collective write pattern."""

        def app(mpi):
            comm = mpi.COMM_WORLD
            fh = File.Open(comm, "contig.bin", MODE_CREATE | MODE_RDWR)
            buf = np.full(8, mpi.rank, dtype=np.int32)
            offset = mpi.rank * buf.nbytes
            fh.Write_at_all(offset, buf)
            # read the whole file back on rank 0
            if mpi.rank == 0:
                whole = np.zeros(8 * mpi.size, dtype=np.int32)
                fh.Read_at(0, whole)
                fh.Close()
                return whole.tolist()
            fh.Close()

        result = run(app, 4)
        expected = sum(([r] * 8 for r in range(4)), [])
        assert result.returns[0] == expected

    def test_individual_pointers_advance(self):
        def app(mpi):
            comm = mpi.COMM_WORLD
            fh = File.Open(comm, f"seq-{mpi.rank}.bin", MODE_CREATE | MODE_RDWR)
            fh.Write(np.array([1.0, 2.0]))
            fh.Write(np.array([3.0]))
            assert fh.Get_position() == 24
            fh.Seek(0)
            buf = np.zeros(3)
            fh.Read(buf)
            fh.Close()
            return buf.tolist()

        assert run(app, 2).returns[0] == [1.0, 2.0, 3.0]

    def test_seek_whence(self):
        def app(mpi):
            fh = File.Open(mpi.COMM_WORLD, "seek.bin", MODE_CREATE | MODE_RDWR)
            fh.Write_at(0, np.zeros(4, dtype=np.uint8))
            fh.Seek(0, 2)  # end
            end = fh.Get_position()
            fh.Seek(-2, 1)  # back two
            mid = fh.Get_position()
            fh.Close()
            return (end, mid, fh.closed)

        assert run(app, 1).returns[0] == (4, 2, True)

    def test_get_size(self):
        def app(mpi):
            fh = File.Open(mpi.COMM_WORLD, "size.bin", MODE_CREATE | MODE_WRONLY)
            fh.Write_at(100, np.zeros(4, dtype=np.uint8))  # sparse write
            size = fh.Get_size()
            fh.Close()
            return size

        assert run(app, 1).returns[0] == 104

    def test_append_mode(self):
        def app(mpi):
            comm = mpi.COMM_WORLD
            fh = File.Open(comm, "log.bin", MODE_CREATE | MODE_WRONLY)
            fh.Write_at(0, np.zeros(8, dtype=np.uint8))
            fh.Close()
            fh = File.Open(comm, "log.bin", MODE_WRONLY | MODE_APPEND)
            start = fh.Get_position()
            fh.Close()
            return start

        assert run(app, 1).returns[0] == 8

    def test_short_read_returns_available(self):
        def app(mpi):
            fh = File.Open(mpi.COMM_WORLD, "short.bin", MODE_CREATE | MODE_RDWR)
            fh.Write_at(0, np.arange(3, dtype=np.uint8))
            buf = np.zeros(10, dtype=np.uint8)
            n = fh.Read_at(0, buf)
            fh.Close()
            return (n, buf[:3].tolist())

        assert run(app, 1).returns[0] == (3, [0, 1, 2])


class TestIoModes:
    def test_excl_on_existing_raises(self):
        def app(mpi):
            File.Open(mpi.COMM_WORLD, "x.bin", MODE_CREATE | MODE_WRONLY).Close()
            File.Open(mpi.COMM_WORLD, "x.bin",
                      MODE_CREATE | MODE_EXCL | MODE_WRONLY)

        with pytest.raises(ActorFailure):
            run(app, 1)

    def test_write_to_readonly_raises(self):
        def app(mpi):
            fh = File.Open(mpi.COMM_WORLD, "ro.bin", MODE_CREATE | MODE_RDONLY)
            fh.Write_at(0, np.zeros(1, dtype=np.uint8))

        with pytest.raises(ActorFailure):
            run(app, 1)

    def test_read_from_writeonly_raises(self):
        def app(mpi):
            fh = File.Open(mpi.COMM_WORLD, "wo.bin", MODE_CREATE | MODE_WRONLY)
            fh.Read_at(0, np.zeros(1, dtype=np.uint8))

        with pytest.raises(ActorFailure):
            run(app, 1)

    def test_closed_file_unusable(self):
        def app(mpi):
            fh = File.Open(mpi.COMM_WORLD, "c.bin", MODE_CREATE | MODE_RDWR)
            fh.Close()
            try:
                fh.Get_size()
            except Exception:
                return "caught"

        assert run(app, 1).returns[0] == "caught"


class TestIoTiming:
    def test_io_advances_simulated_time(self):
        def app(mpi):
            fh = File.Open(mpi.COMM_WORLD, "t.bin", MODE_CREATE | MODE_WRONLY)
            start = mpi.wtime()
            fh.Write_at(0, np.zeros(100 * 1024 * 1024 // 8))  # 100 MiB
            duration = mpi.wtime() - start
            fh.Close()
            return duration

        result = run(app, 1)
        # 100 MiB at the 200 MB/s default disk: ~0.52 s (+ latency)
        assert result.returns[0] == pytest.approx(0.527, rel=0.1)

    def test_concurrent_writers_share_server(self):
        def app(mpi):
            comm = mpi.COMM_WORLD
            fh = File.Open(comm, "shared.bin", MODE_CREATE | MODE_WRONLY)
            comm.Barrier()
            start = mpi.wtime()
            fh.Write_at(mpi.rank * 10_000_000, np.zeros(10_000_000, np.uint8))
            duration = mpi.wtime() - start
            fh.Close()
            return duration

        solo = run(app, 1).returns[0]
        contended = max(run(app, 4).returns)
        # four writers share the 500 MB/s server backbone
        assert contended > 1.3 * solo

    def test_io_works_on_packet_engine(self):
        from repro.packetsim import PacketEngine

        def app(mpi):
            fh = File.Open(mpi.COMM_WORLD, "p.bin", MODE_CREATE | MODE_RDWR)
            start = mpi.wtime()
            fh.Write_at(0, np.zeros(1_000_000, np.uint8))
            fh.Close()
            return mpi.wtime() - start

        platform = cluster("iop", 2)
        result = smpirun(app, 2, platform, engine=PacketEngine(platform))
        assert all(t > 0 for t in result.returns)
