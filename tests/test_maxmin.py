"""Unit + property tests for the max-min fairness solver."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.surf.maxmin import (
    ConstraintSpec,
    FlowSpec,
    MaxMinSystem,
    solve_maxmin,
    solve_maxmin_reference,
    solve_maxmin_vectorized,
)


def make_system(capacities, flows):
    """flows: list of (constraint_ids, bound, weight)."""
    system = MaxMinSystem()
    for i, cap in enumerate(capacities):
        system.add_constraint(f"c{i}", cap)
    for i, (cids, bound, weight) in enumerate(flows):
        system.add_flow(f"f{i}", cids, bound=bound, weight=weight)
    return system


class TestBasics:
    def test_empty_system(self):
        assert solve_maxmin(MaxMinSystem()).size == 0

    def test_single_flow_gets_capacity(self):
        system = make_system([100.0], [((0,), math.inf, 1.0)])
        assert solve_maxmin_reference(system) == pytest.approx([100.0])

    def test_two_flows_split_evenly(self):
        system = make_system([100.0], [((0,), math.inf, 1.0)] * 2)
        assert solve_maxmin_reference(system) == pytest.approx([50.0, 50.0])

    def test_bound_redistributes(self):
        system = make_system(
            [100.0], [((0,), 10.0, 1.0), ((0,), math.inf, 1.0)]
        )
        assert solve_maxmin_reference(system) == pytest.approx([10.0, 90.0])

    def test_bound_above_share_is_inactive(self):
        system = make_system(
            [100.0], [((0,), 80.0, 1.0), ((0,), math.inf, 1.0)]
        )
        assert solve_maxmin_reference(system) == pytest.approx([50.0, 50.0])

    def test_weighted_flow_gets_smaller_share(self):
        # weight 2 consumes twice per rate unit: rates (a, b) with
        # 2a + b = 100 and max-min level a = b/..: progressive filling
        # grows both at the same *rate*, so saturation at 2x + x = 100.
        system = make_system(
            [100.0], [((0,), math.inf, 2.0), ((0,), math.inf, 1.0)]
        )
        rates = solve_maxmin_reference(system)
        assert rates == pytest.approx([100.0 / 3] * 2)

    def test_multi_link_bottleneck(self):
        # flow 0 crosses both links; flow 1 only the second (larger) one
        system = make_system(
            [10.0, 100.0],
            [((0, 1), math.inf, 1.0), ((1,), math.inf, 1.0)],
        )
        rates = solve_maxmin_reference(system)
        assert rates[0] == pytest.approx(10.0)
        assert rates[1] == pytest.approx(90.0)

    def test_fatpipe_caps_individually(self):
        system = MaxMinSystem()
        cid = system.add_constraint("fat", 50.0, shared=False)
        system.add_flow("a", (cid,))
        system.add_flow("b", (cid,))
        rates = solve_maxmin_reference(system)
        assert rates == pytest.approx([50.0, 50.0])  # no sharing

    def test_flow_without_constraints_needs_bound(self):
        system = MaxMinSystem()
        system.add_flow("free", (), bound=42.0)
        assert solve_maxmin_reference(system) == pytest.approx([42.0])

    def test_unbounded_free_flow_raises(self):
        system = MaxMinSystem()
        system.add_flow("free", ())
        with pytest.raises(SimulationError):
            solve_maxmin_reference(system)
        system2 = MaxMinSystem()
        system2.add_flow("free", ())
        with pytest.raises(SimulationError):
            solve_maxmin_vectorized(system2)

    def test_zero_capacity_gives_zero_rate(self):
        system = make_system([0.0], [((0,), math.inf, 1.0)])
        assert solve_maxmin_reference(system) == pytest.approx([0.0])

    def test_zero_bound_flow(self):
        system = make_system(
            [100.0], [((0,), 0.0, 1.0), ((0,), math.inf, 1.0)]
        )
        assert solve_maxmin_reference(system) == pytest.approx([0.0, 100.0])

    def test_validation_rejects_bad_flow(self):
        system = MaxMinSystem()
        system.add_constraint("c", 1.0)
        with pytest.raises(SimulationError):
            system.add_flow("f", (3,))
        with pytest.raises(SimulationError):
            system.add_flow("f", (0,), weight=0.0)
        with pytest.raises(SimulationError):
            system.add_flow("f", (0,), bound=-1.0)
        with pytest.raises(SimulationError):
            MaxMinSystem().add_constraint("c", -1.0)

    def test_dispatch_matches_both_solvers(self):
        system = make_system(
            [50.0, 80.0],
            [((0,), math.inf, 1.0), ((0, 1), 30.0, 1.0), ((1,), math.inf, 2.0)],
        )
        via_dispatch = solve_maxmin(system)
        assert via_dispatch == pytest.approx(solve_maxmin_reference(system))


# -- property-based cross-validation --------------------------------------------------


@st.composite
def random_system(draw):
    n_cons = draw(st.integers(1, 6))
    n_flows = draw(st.integers(1, 12))
    capacities = [draw(st.floats(0.5, 1000.0)) for _ in range(n_cons)]
    system = MaxMinSystem()
    for i, cap in enumerate(capacities):
        shared = draw(st.booleans()) if i % 3 == 2 else True
        system.add_constraint(f"c{i}", cap, shared=shared)
    for i in range(n_flows):
        k = draw(st.integers(1, n_cons))
        cids = tuple(sorted(draw(
            st.lists(st.integers(0, n_cons - 1), min_size=k, max_size=k,
                     unique=True)
        )))
        bound = draw(st.one_of(st.just(math.inf), st.floats(0.1, 500.0)))
        weight = draw(st.floats(0.5, 4.0))
        system.add_flow(f"f{i}", cids, bound=bound, weight=weight)
    return system


@given(random_system())
@settings(max_examples=120, deadline=None)
def test_solvers_agree(system):
    """Reference and vectorised solvers find the same fixed point."""
    ref = solve_maxmin_reference(system)
    vec = solve_maxmin_vectorized(system)
    np.testing.assert_allclose(ref, vec, rtol=1e-9, atol=1e-9)


@given(random_system())
@settings(max_examples=120, deadline=None)
def test_solution_is_feasible(system):
    """No shared constraint is oversubscribed; all bounds respected."""
    rates = solve_maxmin_reference(system)
    assert (rates >= -1e-9).all()
    for flow, rate in zip(system.flows, rates):
        assert rate <= flow.bound * (1 + 1e-9)
    for cid, constraint in enumerate(system.constraints):
        if not constraint.shared:
            continue
        used = sum(
            rate * flow.weight
            for flow, rate in zip(system.flows, rates)
            if cid in flow.constraints
        )
        assert used <= constraint.capacity * (1 + 1e-6) + 1e-9


@given(random_system())
@settings(max_examples=60, deadline=None)
def test_solution_is_maximal(system):
    """Max-min property: every flow is blocked by a bound or a saturated
    constraint (no flow could be increased unilaterally)."""
    rates = solve_maxmin_reference(system)
    usage = {}
    for flow, rate in zip(system.flows, rates):
        for cid in flow.constraints:
            usage[cid] = usage.get(cid, 0.0) + rate * flow.weight
    for flow, rate in zip(system.flows, rates):
        if rate >= flow.bound * (1 - 1e-9):
            continue  # blocked by its own bound
        blocked = False
        for cid in flow.constraints:
            constraint = system.constraints[cid]
            if constraint.shared:
                if usage.get(cid, 0.0) >= constraint.capacity * (1 - 1e-6) - 1e-9:
                    blocked = True
            elif rate * flow.weight >= constraint.capacity * (1 - 1e-9):
                blocked = True
        assert blocked, f"flow {flow.name} could still grow"


@given(st.integers(2, 40), st.floats(1.0, 1e6))
@settings(max_examples=40, deadline=None)
def test_equal_flows_share_equally(n, capacity):
    """n identical flows on one link each get capacity/n."""
    system = make_system([capacity], [((0,), math.inf, 1.0)] * n)
    rates = solve_maxmin_vectorized(system)
    np.testing.assert_allclose(rates, capacity / n, rtol=1e-9)
