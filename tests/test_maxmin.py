"""Unit + property tests for the max-min fairness solver."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.surf.maxmin import (
    ConstraintSpec,
    FlowSpec,
    MaxMinSystem,
    solve_maxmin,
    solve_maxmin_reference,
    solve_maxmin_vectorized,
)


def make_system(capacities, flows):
    """flows: list of (constraint_ids, bound, weight)."""
    system = MaxMinSystem()
    for i, cap in enumerate(capacities):
        system.add_constraint(f"c{i}", cap)
    for i, (cids, bound, weight) in enumerate(flows):
        system.add_flow(f"f{i}", cids, bound=bound, weight=weight)
    return system


class TestBasics:
    def test_empty_system(self):
        assert solve_maxmin(MaxMinSystem()).size == 0

    def test_single_flow_gets_capacity(self):
        system = make_system([100.0], [((0,), math.inf, 1.0)])
        assert solve_maxmin_reference(system) == pytest.approx([100.0])

    def test_two_flows_split_evenly(self):
        system = make_system([100.0], [((0,), math.inf, 1.0)] * 2)
        assert solve_maxmin_reference(system) == pytest.approx([50.0, 50.0])

    def test_bound_redistributes(self):
        system = make_system(
            [100.0], [((0,), 10.0, 1.0), ((0,), math.inf, 1.0)]
        )
        assert solve_maxmin_reference(system) == pytest.approx([10.0, 90.0])

    def test_bound_above_share_is_inactive(self):
        system = make_system(
            [100.0], [((0,), 80.0, 1.0), ((0,), math.inf, 1.0)]
        )
        assert solve_maxmin_reference(system) == pytest.approx([50.0, 50.0])

    def test_weighted_flow_gets_smaller_share(self):
        # weight 2 consumes twice per rate unit: rates (a, b) with
        # 2a + b = 100 and max-min level a = b/..: progressive filling
        # grows both at the same *rate*, so saturation at 2x + x = 100.
        system = make_system(
            [100.0], [((0,), math.inf, 2.0), ((0,), math.inf, 1.0)]
        )
        rates = solve_maxmin_reference(system)
        assert rates == pytest.approx([100.0 / 3] * 2)

    def test_multi_link_bottleneck(self):
        # flow 0 crosses both links; flow 1 only the second (larger) one
        system = make_system(
            [10.0, 100.0],
            [((0, 1), math.inf, 1.0), ((1,), math.inf, 1.0)],
        )
        rates = solve_maxmin_reference(system)
        assert rates[0] == pytest.approx(10.0)
        assert rates[1] == pytest.approx(90.0)

    def test_fatpipe_caps_individually(self):
        system = MaxMinSystem()
        cid = system.add_constraint("fat", 50.0, shared=False)
        system.add_flow("a", (cid,))
        system.add_flow("b", (cid,))
        rates = solve_maxmin_reference(system)
        assert rates == pytest.approx([50.0, 50.0])  # no sharing

    def test_flow_without_constraints_needs_bound(self):
        system = MaxMinSystem()
        system.add_flow("free", (), bound=42.0)
        assert solve_maxmin_reference(system) == pytest.approx([42.0])

    def test_unbounded_free_flow_raises(self):
        system = MaxMinSystem()
        system.add_flow("free", ())
        with pytest.raises(SimulationError):
            solve_maxmin_reference(system)
        system2 = MaxMinSystem()
        system2.add_flow("free", ())
        with pytest.raises(SimulationError):
            solve_maxmin_vectorized(system2)

    def test_zero_capacity_gives_zero_rate(self):
        system = make_system([0.0], [((0,), math.inf, 1.0)])
        assert solve_maxmin_reference(system) == pytest.approx([0.0])

    def test_zero_bound_flow(self):
        system = make_system(
            [100.0], [((0,), 0.0, 1.0), ((0,), math.inf, 1.0)]
        )
        assert solve_maxmin_reference(system) == pytest.approx([0.0, 100.0])

    def test_validation_rejects_bad_flow(self):
        system = MaxMinSystem()
        system.add_constraint("c", 1.0)
        with pytest.raises(SimulationError):
            system.add_flow("f", (3,))
        with pytest.raises(SimulationError):
            system.add_flow("f", (0,), weight=0.0)
        with pytest.raises(SimulationError):
            system.add_flow("f", (0,), bound=-1.0)
        with pytest.raises(SimulationError):
            MaxMinSystem().add_constraint("c", -1.0)

    def test_dispatch_matches_both_solvers(self):
        system = make_system(
            [50.0, 80.0],
            [((0,), math.inf, 1.0), ((0, 1), 30.0, 1.0), ((1,), math.inf, 2.0)],
        )
        via_dispatch = solve_maxmin(system)
        assert via_dispatch == pytest.approx(solve_maxmin_reference(system))


# -- property-based cross-validation --------------------------------------------------


@st.composite
def random_system(draw):
    n_cons = draw(st.integers(1, 6))
    n_flows = draw(st.integers(1, 12))
    capacities = [draw(st.floats(0.5, 1000.0)) for _ in range(n_cons)]
    system = MaxMinSystem()
    for i, cap in enumerate(capacities):
        shared = draw(st.booleans()) if i % 3 == 2 else True
        system.add_constraint(f"c{i}", cap, shared=shared)
    for i in range(n_flows):
        k = draw(st.integers(1, n_cons))
        cids = tuple(sorted(draw(
            st.lists(st.integers(0, n_cons - 1), min_size=k, max_size=k,
                     unique=True)
        )))
        bound = draw(st.one_of(st.just(math.inf), st.floats(0.1, 500.0)))
        weight = draw(st.floats(0.5, 4.0))
        system.add_flow(f"f{i}", cids, bound=bound, weight=weight)
    return system


@given(random_system())
@settings(max_examples=120, deadline=None)
def test_solvers_agree(system):
    """Reference and vectorised solvers find the same fixed point."""
    ref = solve_maxmin_reference(system)
    vec = solve_maxmin_vectorized(system)
    np.testing.assert_allclose(ref, vec, rtol=1e-9, atol=1e-9)


@given(random_system())
@settings(max_examples=120, deadline=None)
def test_solution_is_feasible(system):
    """No shared constraint is oversubscribed; all bounds respected."""
    rates = solve_maxmin_reference(system)
    assert (rates >= -1e-9).all()
    for flow, rate in zip(system.flows, rates):
        assert rate <= flow.bound * (1 + 1e-9)
    for cid, constraint in enumerate(system.constraints):
        if not constraint.shared:
            continue
        used = sum(
            rate * flow.weight
            for flow, rate in zip(system.flows, rates)
            if cid in flow.constraints
        )
        assert used <= constraint.capacity * (1 + 1e-6) + 1e-9


@given(random_system())
@settings(max_examples=60, deadline=None)
def test_solution_is_maximal(system):
    """Max-min property: every flow is blocked by a bound or a saturated
    constraint (no flow could be increased unilaterally)."""
    rates = solve_maxmin_reference(system)
    usage = {}
    for flow, rate in zip(system.flows, rates):
        for cid in flow.constraints:
            usage[cid] = usage.get(cid, 0.0) + rate * flow.weight
    for flow, rate in zip(system.flows, rates):
        if rate >= flow.bound * (1 - 1e-9):
            continue  # blocked by its own bound
        blocked = False
        for cid in flow.constraints:
            constraint = system.constraints[cid]
            if constraint.shared:
                if usage.get(cid, 0.0) >= constraint.capacity * (1 - 1e-6) - 1e-9:
                    blocked = True
            elif rate * flow.weight >= constraint.capacity * (1 - 1e-9):
                blocked = True
        assert blocked, f"flow {flow.name} could still grow"


@given(st.integers(2, 40), st.floats(1.0, 1e6))
@settings(max_examples=40, deadline=None)
def test_equal_flows_share_equally(n, capacity):
    """n identical flows on one link each get capacity/n."""
    system = make_system([capacity], [((0,), math.inf, 1.0)] * n)
    rates = solve_maxmin_vectorized(system)
    np.testing.assert_allclose(rates, capacity / n, rtol=1e-9)


# -- incremental solver ---------------------------------------------------------------


class TestIncrementalMaxMin:
    """Unit behaviour of the persistent dirty-set solver."""

    def _solver(self):
        from repro.surf.maxmin import IncrementalMaxMin

        return IncrementalMaxMin()

    def test_single_flow_gets_capacity(self):
        inc = self._solver()
        inc.ensure_constraint("c0", 100.0)
        inc.add_flow("f0", ["c0"])
        assert inc.solve_dirty() == {"f0"}
        assert inc.rate("f0") == pytest.approx(100.0)

    def test_arrival_only_resolves_its_component(self):
        inc = self._solver()
        inc.ensure_constraint("c0", 100.0)
        inc.ensure_constraint("c1", 60.0)
        inc.add_flow("f0", ["c0"])
        inc.add_flow("f1", ["c1"])
        inc.solve_dirty()
        # a new flow on c1 must not re-solve the c0 component
        inc.add_flow("f2", ["c1"])
        solved = inc.solve_dirty()
        assert solved == {"f1", "f2"}
        assert inc.last_components == 1
        assert inc.rate("f0") == pytest.approx(100.0)
        assert inc.rate("f1") == pytest.approx(30.0)
        assert inc.rate("f2") == pytest.approx(30.0)

    def test_departure_redistributes_to_neighbours(self):
        inc = self._solver()
        inc.ensure_constraint("c0", 100.0)
        inc.add_flow("f0", ["c0"])
        inc.add_flow("f1", ["c0"])
        inc.solve_dirty()
        assert inc.rate("f0") == pytest.approx(50.0)
        inc.remove_flow("f1")
        assert inc.solve_dirty() == {"f0"}
        assert inc.rate("f0") == pytest.approx(100.0)
        assert "f1" not in inc

    def test_nothing_dirty_solves_nothing(self):
        inc = self._solver()
        inc.ensure_constraint("c0", 100.0)
        inc.add_flow("f0", ["c0"])
        inc.solve_dirty()
        assert inc.solve_dirty() == set()
        assert inc.last_components == 0

    def test_capacity_update_marks_dirty(self):
        inc = self._solver()
        inc.ensure_constraint("c0", 100.0)
        inc.add_flow("f0", ["c0"])
        inc.solve_dirty()
        inc.ensure_constraint("c0", 40.0)
        assert inc.solve_dirty() == {"f0"}
        assert inc.rate("f0") == pytest.approx(40.0)

    def test_fatpipe_does_not_couple_components(self):
        inc = self._solver()
        inc.ensure_constraint("pipe", 100.0, shared=False)
        inc.ensure_constraint("c0", 80.0)
        inc.ensure_constraint("c1", 60.0)
        inc.add_flow("f0", ["c0", "pipe"])
        inc.add_flow("f1", ["c1", "pipe"])
        inc.solve_dirty()
        # the FATPIPE caps each flow individually but must not merge the
        # c0 and c1 components: a change on c1 leaves f0 untouched
        inc.ensure_constraint("c1", 30.0)
        assert inc.solve_dirty() == {"f1"}
        assert inc.rate("f0") == pytest.approx(80.0)
        assert inc.rate("f1") == pytest.approx(30.0)

    def test_transitive_component_is_resolved_together(self):
        inc = self._solver()
        inc.ensure_constraint("c0", 100.0)
        inc.ensure_constraint("c1", 100.0)
        inc.add_flow("f0", ["c0"])
        inc.add_flow("bridge", ["c0", "c1"])
        inc.add_flow("f1", ["c1"])
        inc.solve_dirty()
        inc.ensure_constraint("c0", 10.0)
        # the chain c0 -bridge- c1 is one component
        assert inc.solve_dirty() == {"f0", "bridge", "f1"}

    def test_bound_and_weight_respected(self):
        inc = self._solver()
        inc.ensure_constraint("c0", 100.0)
        inc.add_flow("f0", ["c0"], bound=10.0)
        inc.add_flow("f1", ["c0"], weight=2.0)
        inc.solve_dirty()
        assert inc.rate("f0") == pytest.approx(10.0)
        assert inc.rate("f1") == pytest.approx(45.0)

    def test_unknown_constraint_rejected(self):
        inc = self._solver()
        with pytest.raises(SimulationError):
            inc.add_flow("f0", ["nope"])

    def test_unconstrained_unbounded_flow_raises(self):
        inc = self._solver()
        inc.add_flow("free", [])
        with pytest.raises(SimulationError):
            inc.solve_dirty()

    def test_duplicate_flow_rejected(self):
        inc = self._solver()
        inc.ensure_constraint("c0", 100.0)
        inc.add_flow("f0", ["c0"])
        with pytest.raises(SimulationError):
            inc.add_flow("f0", ["c0"])

    def test_validation(self):
        inc = self._solver()
        inc.ensure_constraint("c0", 100.0)
        with pytest.raises(SimulationError):
            inc.add_flow("f0", ["c0"], weight=0.0)
        with pytest.raises(SimulationError):
            inc.add_flow("f0", ["c0"], bound=-1.0)
        with pytest.raises(SimulationError):
            inc.ensure_constraint("neg", -5.0)

    def test_unknown_sharing_mode_rejected(self):
        from repro.surf.maxmin import IncrementalMaxMin

        with pytest.raises(SimulationError):
            IncrementalMaxMin(sharing="fast")

    def test_double_remove_raises_named_error(self):
        from repro.errors import UnknownFlowError

        inc = self._solver()
        inc.ensure_constraint("c0", 100.0)
        inc.add_flow("f0", ["c0"])
        inc.remove_flow("f0")
        with pytest.raises(UnknownFlowError) as exc:
            inc.remove_flow("f0")
        assert exc.value.key == "f0"
        assert "f0" in str(exc.value)
        # UnknownFlowError is a SimulationError, so existing broad handlers
        # keep working
        assert isinstance(exc.value, SimulationError)

    def test_remove_flow_idempotent_when_not_strict(self):
        inc = self._solver()
        inc.ensure_constraint("c0", 100.0)
        inc.add_flow("f0", ["c0"])
        inc.remove_flow("f0", strict=False)
        inc.remove_flow("f0", strict=False)  # no-op, no error
        inc.remove_flow("never-added", strict=False)
        assert inc.solve_dirty() == set()

    def test_drained_constraints_are_garbage_collected(self):
        inc = self._solver()
        inc.ensure_constraint("c0", 100.0)
        inc.ensure_constraint("c1", 50.0)
        inc.add_flow("f0", ["c0", "c1"])
        inc.solve_dirty()
        assert len(inc._cons) == 2
        inc.remove_flow("f0")
        inc.solve_dirty()
        # both constraints drained with the flow: records and usage gone
        assert len(inc._cons) == 0
        assert not inc.has_constraint("c0")
        assert inc.usage("c0") == 0.0

    def test_gc_spares_repopulated_and_updated_constraints(self):
        inc = self._solver()
        inc.ensure_constraint("c0", 100.0)
        inc.add_flow("f0", ["c0"])
        inc.solve_dirty()
        inc.remove_flow("f0")
        # repopulated before the solve: the constraint must survive
        inc.add_flow("f1", ["c0"])
        inc.solve_dirty()
        assert inc.has_constraint("c0")
        assert inc.rate("f1") == pytest.approx(100.0)

    def test_reregistration_after_gc(self):
        inc = self._solver()
        inc.ensure_constraint("c0", 100.0)
        inc.add_flow("f0", ["c0"])
        inc.solve_dirty()
        inc.remove_flow("f0")
        inc.solve_dirty()  # garbage-collects c0
        # the engine's enrollment path: re-ensure, then add
        inc.ensure_constraint("c0", 80.0)
        inc.add_flow("f1", ["c0"])
        inc.solve_dirty()
        assert inc.rate("f1") == pytest.approx(80.0)

    def test_solver_memory_bounded_under_churn(self):
        """Constraint records, flow slots and the incidence pool must all
        stay flat across repeated enroll/retire cycles (the long-run leak
        this PR fixes)."""
        inc = self._solver()
        sizes = []
        for cycle in range(12):
            for c in range(4):
                inc.ensure_constraint(c, 100.0 + c)
            for f in range(8):
                inc.add_flow((cycle, f), [f % 4, (f + 1) % 4])
            inc.solve_dirty()
            for f in range(8):
                inc.remove_flow((cycle, f))
            inc.solve_dirty()
            sizes.append((len(inc._cons), inc._n_slots,
                          len(inc._inc_pool), len(inc._rate_arr)))
        assert len(set(sizes)) == 1  # flat from the first cycle on


def _random_incremental_trace(gen, n_cons=6, n_events=40, sharing="exact"):
    """Yield (incremental solver, batch solver snapshot) after random churn.

    Drives an :class:`IncrementalMaxMin` through a random sequence of flow
    arrivals and departures with a :meth:`solve_dirty` after every event,
    and cross-checks the surviving rates against a fresh batch solve of
    the same system after each one.
    """
    from repro.surf.maxmin import IncrementalMaxMin

    inc = IncrementalMaxMin(sharing=sharing)
    capacities = [float(gen.uniform(10, 1000)) for _ in range(n_cons)]
    shared = [bool(gen.random() < 0.85) for _ in range(n_cons)]
    for i, (cap, sh) in enumerate(zip(capacities, shared)):
        inc.ensure_constraint(i, cap, shared=sh)
    live: dict[int, tuple[tuple[int, ...], float, float]] = {}
    next_id = 0
    for _ in range(n_events):
        departing = live and gen.random() < 0.4
        if departing:
            key = sorted(live)[int(gen.integers(0, len(live)))]
            inc.remove_flow(key)
            del live[key]
        else:
            k = int(gen.integers(1, min(4, n_cons) + 1))
            cids = tuple(sorted(gen.choice(n_cons, size=k, replace=False).tolist()))
            bound = math.inf if gen.random() < 0.5 else float(gen.uniform(1, 500))
            weight = float(gen.uniform(0.5, 3.0))
            # re-registration path: drained constraints are garbage-collected
            # by solve_dirty, so (like the engine) re-ensure before enrolling
            for cid in cids:
                inc.ensure_constraint(cid, capacities[cid], shared=shared[cid])
            inc.add_flow(next_id, cids, bound=bound, weight=weight)
            live[next_id] = (cids, bound, weight)
            next_id += 1
        inc.solve_dirty()
        yield inc, live, capacities, shared


def test_incremental_matches_batch_solvers_under_churn():
    """Property-style fuzz: after every arrival/departure the incremental
    rates equal a fresh reference *and* vectorised solve of the live
    system (seeded via repro.rng)."""
    from repro import rng as rng_mod

    for trial in range(8):
        gen = rng_mod.substream(2026, "maxmin-incremental", trial)
        for inc, live, capacities, shared in _random_incremental_trace(gen):
            system = MaxMinSystem()
            for i, (cap, sh) in enumerate(zip(capacities, shared)):
                system.add_constraint(f"c{i}", cap, shared=sh)
            order = sorted(live)
            for key in order:
                cids, bound, weight = live[key]
                system.add_flow(f"f{key}", cids, bound=bound, weight=weight)
            ref = solve_maxmin_reference(system)
            vec = solve_maxmin_vectorized(system)
            got = np.array([inc.rate(key) for key in order])
            np.testing.assert_allclose(ref, vec, rtol=1e-9, atol=1e-9)
            np.testing.assert_allclose(got, ref, rtol=1e-9, atol=1e-9)


def test_approx_sharing_feasible_and_bounded_under_churn():
    """Approx mode under churn: every solve stays within the round cap,
    respects per-flow bounds, and conserves capacity on every shared
    constraint (the accuracy contract of ``--sharing approx``)."""
    from repro import rng as rng_mod
    from repro.surf.maxmin import APPROX_MAX_ROUNDS

    for trial in range(4):
        gen = rng_mod.substream(2026, "maxmin-approx", trial)
        trace = _random_incremental_trace(gen, sharing="approx")
        for inc, live, capacities, shared in trace:
            assert inc.last_fill_rounds <= APPROX_MAX_ROUNDS * max(
                inc.last_components, 1
            )
            for key, (cids, bound, weight) in live.items():
                assert inc.rate(key) <= bound * (1 + 1e-9)
            for record in inc._cons.values():
                if not record.shared:
                    continue
                used = sum(
                    inc.rate(fkey) * live[fkey][2] for fkey in record.flows
                )
                assert used <= record.capacity * (1 + 1e-9)


def test_approx_matches_exact_below_round_cap():
    """Components that converge within the round cap solve identically in
    both modes — approx only diverges once the cap truncates filling."""
    from repro.surf.maxmin import IncrementalMaxMin

    rates = {}
    for sharing in ("exact", "approx"):
        inc = IncrementalMaxMin(sharing=sharing)
        inc.ensure_constraint("c0", 100.0)
        inc.ensure_constraint("c1", 60.0)
        inc.add_flow("f0", ["c0"], bound=15.0)
        inc.add_flow("f1", ["c0", "c1"])
        inc.add_flow("f2", ["c1"], weight=2.0)
        inc.solve_dirty()
        assert inc.last_approx_events == 0
        rates[sharing] = [inc.rate(k) for k in ("f0", "f1", "f2")]
    assert rates["exact"] == rates["approx"]


def test_approx_truncates_large_staircase_component():
    """A bound staircase forces one fixing round per flow: above the round
    cap approx takes the bandwidth-fraction fallback and stays feasible."""
    from repro.surf.maxmin import APPROX_MAX_ROUNDS, IncrementalMaxMin

    n = APPROX_MAX_ROUNDS + 6
    inc = IncrementalMaxMin(sharing="approx")
    inc.ensure_constraint("c0", 1000.0)
    for i in range(n):
        # strictly increasing bounds, each below the running fair share
        inc.add_flow(f"f{i}", ["c0"], bound=1.0 + 0.5 * i)
    inc.solve_dirty()
    assert inc.last_approx_events == 1
    assert inc.last_fill_rounds == APPROX_MAX_ROUNDS
    total = sum(inc.rate(f"f{i}") for i in range(n))
    assert total <= 1000.0 * (1 + 1e-9)
    for i in range(n):
        assert inc.rate(f"f{i}") <= (1.0 + 0.5 * i) * (1 + 1e-9)


def test_engine_solver_constraints_stay_flat_across_cycles():
    """Engine-level regression for the constraint leak: repeated
    communicate/retire cycles must not grow the persistent solver."""
    from repro.surf import Engine, cluster

    platform = cluster("gcc", 4)
    engine = Engine(platform)
    counts = []
    for _cycle in range(6):
        for i in range(3):
            engine.communicate(f"node-{i}", f"node-{i + 1}", 1_000_000)
        engine.execute("node-0", 5e6)
        engine.run()
        counts.append(len(engine._solver._cons))
    assert len(set(counts)) == 1
