"""Tests for the request machinery: nonblocking, persistent, wait/test."""

from __future__ import annotations

import numpy as np
import pytest

from repro.smpi import (
    REQUEST_NULL,
    SmpiConfig,
    constants,
    smpirun,
    startall,
)
from repro.smpi import request as rq
from repro.surf import cluster


def run(app, n=2, config=None):
    return smpirun(app, n, cluster("rq", max(n, 2)), config=config)


class TestNonblocking:
    def test_isend_irecv_wait(self, run_app):
        def app(mpi):
            comm = mpi.COMM_WORLD
            if mpi.rank == 0:
                req = comm.Isend(np.arange(4, dtype=np.float64), 1, 0)
                rq.wait(req)
            else:
                buf = np.zeros(4)
                req = comm.Irecv(buf, 0, 0)
                status = rq.wait(req)
                return (buf.tolist(), status.source)

        result = run_app(app, 2)
        assert result.returns[1] == ([0.0, 1.0, 2.0, 3.0], 0)

    def test_overlapping_communication_and_compute(self, run_app):
        def app(mpi):
            comm = mpi.COMM_WORLD
            if mpi.rank == 0:
                req = comm.Isend(np.zeros(100_000, dtype=np.uint8), 1, 0)
                mpi.execute(5e8)  # 0.5 s of compute overlapping the send
                rq.wait(req)
                return mpi.wtime()
            buf = np.zeros(100_000, dtype=np.uint8)
            rq.wait(comm.Irecv(buf, 0, 0))
            return mpi.wtime()

        result = run_app(app, 2)
        # rank 0's time is dominated by compute, not compute + transfer
        assert result.returns[0] == pytest.approx(0.5, rel=0.1)

    def test_test_polls_without_blocking(self, run_app):
        def app(mpi):
            comm = mpi.COMM_WORLD
            if mpi.rank == 0:
                mpi.sleep(0.2)
                comm.Send(np.zeros(1), 1, 0)
            else:
                buf = np.zeros(1)
                req = comm.Irecv(buf, 0, 0)
                polls = 0
                while True:
                    done, _status = rq.test(req)
                    polls += 1
                    if done:
                        break
                return polls

        result = run_app(app, 2)
        assert result.returns[1] > 1  # really polled several times

    def test_waitall_multiple_sources(self, run_app):
        def app(mpi):
            comm = mpi.COMM_WORLD
            if mpi.rank == 3:
                bufs = [np.zeros(2) for _ in range(3)]
                reqs = [comm.Irecv(bufs[i], i, 0) for i in range(3)]
                statuses = rq.waitall(reqs)
                return ([b[0] for b in bufs], [s.source for s in statuses])
            comm.Send(np.full(2, float(mpi.rank)), 3, 0)

        result = run_app(app, 4)
        values, sources = result.returns[3]
        assert values == [0.0, 1.0, 2.0]
        assert sources == [0, 1, 2]

    def test_waitany_returns_earliest(self, run_app):
        def app(mpi):
            comm = mpi.COMM_WORLD
            if mpi.rank == 2:
                bufs = [np.zeros(1), np.zeros(1)]
                reqs = [comm.Irecv(bufs[i], i, 0) for i in range(2)]
                index, status = rq.waitany(reqs)
                rq.wait(reqs[1 - index])
                return (index, status.source)
            mpi.sleep(0.3 if mpi.rank == 0 else 0.0)
            comm.Send(np.zeros(1), 2, 0)

        result = run_app(app, 3)
        assert result.returns[2] == (1, 1)  # rank 1 sent immediately

    def test_waitsome_collects_completions(self, run_app):
        def app(mpi):
            comm = mpi.COMM_WORLD
            if mpi.rank == 3:
                bufs = [np.zeros(1) for _ in range(3)]
                reqs = [comm.Irecv(bufs[i], i, 0) for i in range(3)]
                collected = []
                while len(collected) < 3:
                    indices, _ = rq.waitsome(reqs)
                    for i in indices:
                        if i not in collected:
                            collected.append(i)
                        reqs[i] = REQUEST_NULL
                return sorted(collected)
            comm.Send(np.zeros(1), 3, 0)

        assert run_app(app, 4).returns[3] == [0, 1, 2]

    def test_testany_and_testall(self, run_app):
        def app(mpi):
            comm = mpi.COMM_WORLD
            if mpi.rank == 0:
                mpi.sleep(0.1)
                comm.Send(np.zeros(1), 1, 0)
            else:
                buf = np.zeros(1)
                req = comm.Irecv(buf, 0, 0)
                flag, _, _ = rq.testany([req])
                all_flag, _ = rq.testall([req])
                rq.wait(req)
                done_flag, _ = rq.testall([req])
                return (flag, all_flag, done_flag)

        result = run_app(app, 2)
        flag, all_flag, done_flag = result.returns[1]
        assert not flag and not all_flag and done_flag

    def test_null_requests_in_families(self):
        assert rq.wait(REQUEST_NULL).source == constants.ANY_SOURCE
        done, _status = rq.test(REQUEST_NULL)
        assert done
        idx, _ = rq.waitany([REQUEST_NULL, REQUEST_NULL])
        assert idx == constants.UNDEFINED
        indices, _ = rq.waitsome([REQUEST_NULL])
        assert indices == []

    def test_cancel_unmatched_recv(self, run_app):
        def app(mpi):
            comm = mpi.COMM_WORLD
            if mpi.rank == 0:
                buf = np.zeros(1)
                req = comm.Irecv(buf, 1, 99)
                req.cancel()
                status = rq.wait(req)
                return status.is_cancelled()
            return None

        assert run_app(app, 2).returns[0] is True


class TestPersistent:
    def test_send_recv_init_start_roundtrips(self, run_app):
        def app(mpi):
            comm = mpi.COMM_WORLD
            rounds = 3
            if mpi.rank == 0:
                buf = np.zeros(4)
                req = comm.Send_init(buf, 1, 0)
                for round_no in range(rounds):
                    buf[:] = round_no
                    req.start()
                    rq.wait(req)
            else:
                buf = np.zeros(4)
                req = comm.Recv_init(buf, 0, 0)
                seen = []
                for _ in range(rounds):
                    req.start()
                    rq.wait(req)
                    seen.append(buf[0])
                return seen

        assert run_app(app, 2).returns[1] == [0.0, 1.0, 2.0]

    def test_startall(self, run_app):
        def app(mpi):
            comm = mpi.COMM_WORLD
            if mpi.rank == 0:
                a = comm.Send_init(np.array([1.0]), 1, 1)
                b = comm.Send_init(np.array([2.0]), 1, 2)
                startall([a, b])
                rq.waitall([a, b])
            else:
                buf1, buf2 = np.zeros(1), np.zeros(1)
                r1 = comm.Recv_init(buf1, 0, 1)
                r2 = comm.Recv_init(buf2, 0, 2)
                startall([r1, r2])
                rq.waitall([r1, r2])
                return (buf1[0], buf2[0])

        assert run_app(app, 2).returns[1] == (1.0, 2.0)

    def test_double_start_raises(self, run_app):
        from repro.errors import MpiError

        def app(mpi):
            comm = mpi.COMM_WORLD
            if mpi.rank == 0:
                req = comm.Recv_init(np.zeros(1), 1, 0)
                req.start()
                try:
                    req.start()
                except MpiError:
                    req.cancel()
                    return "caught"
            else:
                return None

        assert run_app(app, 2).returns[0] == "caught"

    def test_inactive_persistent_tests_complete(self, run_app):
        def app(mpi):
            comm = mpi.COMM_WORLD
            req = comm.Send_init(np.zeros(1), 1 - mpi.rank, 0)
            done, _ = rq.test(req)
            return done

        assert run_app(app, 2).returns == [True, True]
