"""The data-parallel DL workload family: communicator registry, SGD
skeleton, topology-aware splits, and the allreduce fuzz gate.

The fuzz tests use *integer-valued* float payloads: integer sums are
exact in float64, so every summation order gives bit-identical results
— which is what lets us demand exact equality across algorithms whose
combination orders differ.  Simulated clocks must also be deterministic:
same point, same config => same simulated time, on every execution
backend and under both sharing solvers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dl import (
    COMMUNICATORS,
    create_communicator,
    bucketize,
    parse_layers,
    sgd_skeleton,
)
from repro.errors import ConfigError
from repro.simix import greenlet_available
from repro.smpi import SmpiConfig, smpirun
from repro.smpi.coll import ALGORITHMS
from repro.surf import cluster, multi_cabinet_cluster

BACKENDS = ["coroutine", "thread"] + (
    ["greenlet"] if greenlet_available() else []
)

#: 8 ranks over 3 cabinets (3+3+2) — hierarchical strategies see real
#: uplinks, flat ones a two-level route
CABINETS = (3, 3, 2)


def cab_platform(name="dl"):
    return multi_cabinet_cluster(name, CABINETS)


# ---------------------------------------------------------------- registry


class TestRegistry:
    def test_all_strategies_registered(self):
        assert set(COMMUNICATORS) == {
            "naive", "flat", "ring", "rabenseifner", "hierarchical",
        }

    def test_unknown_name_raises(self):
        def app(mpi):
            create_communicator("telepathy", mpi.COMM_WORLD)
            yield from mpi.co.sleep(0)

        from repro.errors import ActorFailure

        with pytest.raises((ActorFailure, ConfigError)):
            smpirun(app, 2, cluster("reg", 2))

    @pytest.mark.parametrize("name", sorted(COMMUNICATORS))
    def test_strategy_sums_gradients(self, name):
        def app(mpi):
            dlcomm = create_communicator(name, mpi.COMM_WORLD)
            assert dlcomm.rank == mpi.rank
            assert dlcomm.size == mpi.size
            grad = np.full(16, float(mpi.rank + 1))
            total = np.zeros(16)
            yield from dlcomm.co_allreduce_grad(grad, total)
            return total.tolist()

        n = 8
        result = smpirun(app, n, cab_platform())
        expected = [n * (n + 1) / 2] * 16
        for got in result.returns:
            assert got == pytest.approx(expected)

    def test_split_keeps_strategy(self):
        def app(mpi):
            dlcomm = create_communicator("ring", mpi.COMM_WORLD)
            sub = yield from mpi.COMM_WORLD.co.Split(mpi.rank % 2, mpi.rank)
            half = type(dlcomm)(sub)
            assert type(half) is type(dlcomm)
            grad = np.full(4, 1.0)
            total = np.zeros(4)
            yield from half.co_allreduce_grad(grad, total)
            return float(total[0])

        result = smpirun(app, 6, cluster("split", 6))
        assert result.returns == [3.0] * 6  # each half has 3 ranks


# ---------------------------------------------------------------- Split_type


class TestSplitType:
    def test_cabinet_split_groups_by_cabinet(self):
        def app(mpi):
            local = yield from mpi.COMM_WORLD.co.Split_type("cabinet")
            return (local.size, local.Get_rank())

        result = smpirun(app, 8, cab_platform())
        sizes = [size for size, _rank in result.returns]
        # ranks 0-2 -> cab0, 3-5 -> cab1, 6-7 -> cab2 (round-robin hosts)
        assert sizes == [3, 3, 3, 3, 3, 3, 2, 2]
        assert [rank for _s, rank in result.returns] == [0, 1, 2, 0, 1, 2, 0, 1]

    def test_shared_split_groups_by_host(self):
        # 4 ranks over a 2-host cluster: ranks 0,2 share host 0 and 1,3 host 1
        def app(mpi):
            local = yield from mpi.COMM_WORLD.co.Split_type("shared")
            return sorted(
                local.group.world_rank(r) for r in range(local.size)
            )

        result = smpirun(app, 4, cluster("shared", 2))
        assert result.returns == [[0, 2], [1, 3], [0, 2], [1, 3]]

    def test_cabinet_split_falls_back_to_host_on_flat_cluster(self):
        def app(mpi):
            local = yield from mpi.COMM_WORLD.co.Split_type("cabinet")
            return local.size

        result = smpirun(app, 4, cluster("flat", 4))
        assert result.returns == [1, 1, 1, 1]

    def test_unknown_kind_raises(self):
        from repro.errors import ActorFailure, MpiError

        def app(mpi):
            yield from mpi.COMM_WORLD.co.Split_type("rack")

        with pytest.raises((ActorFailure, MpiError)):
            smpirun(app, 2, cluster("kind", 2))


# ---------------------------------------------------------------- SGD skeleton


class TestSgdSkeleton:
    def test_parse_layers_groups(self):
        assert parse_layers("2x1KiB,4KiB") == [1024, 1024, 4096]
        assert parse_layers([512, "1KiB"]) == [512, 1024]
        with pytest.raises(ConfigError):
            parse_layers("")
        with pytest.raises(ConfigError):
            parse_layers("twox1KiB")

    def test_bucketize_packs_in_order(self):
        assert bucketize([100, 100, 100], 150) == [200, 100]
        assert bucketize([1000], 100) == [1000]  # oversized layer: own bucket
        assert bucketize([10, 10], 1000) == [20]
        with pytest.raises(ConfigError):
            bucketize([10], 0)

    @pytest.mark.parametrize("name", sorted(COMMUNICATORS))
    def test_step_time_positive(self, name):
        app = sgd_skeleton(communicator=name, layers="2x64KiB",
                           bucket="64KiB", steps=2, flops_per_step=1e7)
        result = smpirun(app, 8, cab_platform())
        step = result.returns[0]
        assert step > 0
        # ranks leave the closing barrier at slightly different instants,
        # so per-rank step times agree only up to that skew
        assert all(r == pytest.approx(step, rel=0.05) for r in result.returns)

    def test_gradient_buffers_are_folded(self):
        """shared_malloc folding: the shared peak equals one copy of the
        buckets (grad + sum), independent of the rank count — the property
        the 16k-rank RSS gate relies on."""
        layer_bytes = 64 * 1024

        def peak(n_ranks):
            app = sgd_skeleton(communicator="flat", layers="1x64KiB",
                               bucket="64KiB", steps=1, flops_per_step=0.0)
            result = smpirun(app, n_ranks, cluster("fold", n_ranks))
            return result.memory.shared_peak

        assert peak(2) == peak(8) == 2 * layer_bytes  # grad + sum


# ---------------------------------------------------------------- fuzz gate

FUZZ_CASES = [
    # (seed, n_ranks, count)
    (0, 5, 7),
    (1, 8, 64),
    (2, 6, 129),
]


def _fuzz_payloads(seed: int, n: int, count: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(-999, 999, size=(n, count)).astype(np.float64)


@pytest.mark.parametrize("algo", sorted(ALGORITHMS["allreduce"]))
@pytest.mark.parametrize("seed,n,count", FUZZ_CASES)
def test_fuzz_allreduce_bit_identical(algo, seed, n, count):
    """Every algorithm must reproduce the naive reference bit-for-bit on
    integer-valued payloads (exact in float64 whatever the sum order)."""
    payloads = _fuzz_payloads(seed, n, count)

    def app(mpi):
        send = payloads[mpi.rank].copy()
        recv = np.zeros(count)
        yield from mpi.COMM_WORLD.co.Allreduce(send, recv)
        return recv.tobytes()

    config = SmpiConfig(coll_algorithms={"allreduce": algo})
    result = smpirun(app, n, cab_platform(f"fuzz{seed}"), config=config)
    expected = payloads.sum(axis=0).tobytes()
    for rank, got in enumerate(result.returns):
        assert got == expected, (algo, rank)


@pytest.mark.parametrize("algo", sorted(ALGORITHMS["allreduce"]))
def test_fuzz_allreduce_deterministic_clock(algo):
    """Same point, same sharing solver => identical simulated time, on
    every execution backend and on repeat runs."""
    payloads = _fuzz_payloads(3, 6, 33)

    def app(mpi):
        send = payloads[mpi.rank].copy()
        recv = np.zeros(33)
        yield from mpi.COMM_WORLD.co.Allreduce(send, recv)
        return recv.tobytes()

    expected = payloads.sum(axis=0).tobytes()
    for sharing in ("exact", "approx"):
        times = set()
        config = SmpiConfig(coll_algorithms={"allreduce": algo},
                            sharing=sharing)
        for ctx in BACKENDS:
            for _repeat in range(2):
                result = smpirun(app, 6, cab_platform("clk"),
                                 config=config, ctx=ctx)
                assert all(r == expected for r in result.returns)
                times.add(result.simulated_time)
        assert len(times) == 1, (algo, sharing, times)
        assert times.pop() > 0
