"""Ablation — how many linear segments does the model need?

The paper states "in practice, we find that the model should be
instantiated for 3 segments" (section 4.1).  This bench fits 1-4 segments
on the same griffon campaign and reports the accuracy of each, checking
the paper's choice: a large jump from 2 to 3 segments and diminishing
returns after.
"""

from __future__ import annotations

import numpy as np

from _helpers import SEED, FigureReport
from repro.calibration import fit_segments
from repro.metrics import compare_series
from repro.platforms import griffon
from repro.refcluster import OPENMPI, run_pingpong_campaign
from repro.surf.network_model import PiecewiseLinearNetworkModel


def experiment():
    campaign = run_pingpong_campaign(
        griffon(2), "griffon-0", "griffon-1", OPENMPI, seed=SEED + 9
    )
    rows = []
    for k in (1, 2, 3, 4):
        segments = fit_segments(campaign.sizes, campaign.times, n_segments=k)
        model = PiecewiseLinearNetworkModel.from_segments(
            [(s.lo, s.hi, s.alpha, s.beta) for s in segments], campaign.route
        )
        predicted = np.asarray(
            [model.predict_time(float(s), campaign.route) for s in campaign.sizes]
        )
        comparison = compare_series(
            f"{k}-segment", campaign.sizes, predicted, campaign.times
        )
        boundaries = [s.hi for s in segments[:-1]]
        rows.append((k, comparison, boundaries, model.parameter_count))
    return rows


def test_ablation_segments(once):
    rows = once(experiment)
    report = FigureReport(
        "ablation_segments", "1/2/3/4-segment piece-wise fits (griffon)"
    )
    for k, comparison, boundaries, n_params in rows:
        bounds = ", ".join(f"{b:.0f}" for b in boundaries) or "—"
        report.line(
            f"  k={k} ({n_params} params, boundaries at [{bounds}] B): "
            f"{comparison.row()}"
        )
    report.line()
    report.paper("the model should be instantiated for 3 segments "
                 "(8 parameters)")
    errors = {k: cmp.mean_error_pct for k, cmp, _b, _p in rows}
    report.measured(
        "avg errors: " + ", ".join(f"k={k}: {e:.2f}%" for k, e in errors.items())
    )
    report.finish()

    # 3 segments beat 1 and 2 decisively; 4 adds little
    assert errors[3] < 0.5 * errors[2]
    assert errors[2] <= errors[1]
    assert errors[4] <= errors[3] + 0.5
    improvement_3 = errors[2] - errors[3]
    improvement_4 = errors[3] - errors[4]
    assert improvement_3 > 2 * max(improvement_4, 1e-6)
