"""Ablation — incremental re-sharing under dynamic resource availability.

Availability profiles turn a static platform into a stream of capacity
events: every profile point changes one resource's capacity mid-run.
The historical full-reshare solver re-solves *every* live flow at every
such event; the incremental solver marks only the changed constraint
dirty and re-solves its connected component.  This bench drives a
crossbar of disjoint transfers — a subset of whose links carry
multi-point availability profiles — through both solver paths at
growing flow counts, asserts bit-identical simulated clocks, and
measures the per-event flow-resolution work and wall-clock.
"""

from __future__ import annotations

import time

from _helpers import FigureReport
from repro.surf import Engine, cluster, parse_profile

FLOW_COUNTS = (128, 512, 1024)

#: links carrying an availability profile (capacity-event sources)
N_PROFILED = 32
#: capacity steps per profiled link, spread over the longest flow
POINTS_PER_PROFILE = 4


def _make_platform(n_flows: int):
    platform = cluster(
        "faultab", n_flows, backbone_bandwidth=None, split_duplex=True
    )
    # longest flow: n_flows MB at 125 MB/s over a half-capacity trough
    horizon = n_flows * 1e6 / 125e6 * 2
    values = (0.75, 0.5, 0.75, 1.0)  # never 0: every flow must finish
    for i, link in enumerate(platform.links[:N_PROFILED]):
        text = "".join(
            f"{(i + 1 + k * N_PROFILED) * horizon / (POINTS_PER_PROFILE * N_PROFILED + 1)!r}"
            f" {values[k % len(values)]!r}\n"
            for k in range(POINTS_PER_PROFILE)
        )
        link.availability_profile = parse_profile(text, name=link.name)
    return platform


def crossbar_stage(platform, n_flows: int, full: bool):
    """Disjoint transfers with staggered capacity events on their links."""
    engine = Engine(platform, full_reshare=full)
    for i in range(n_flows):
        engine.communicate(
            f"node-{i}", f"node-{(i + 1) % n_flows}", 1e6 * (1 + i)
        )
    start = time.perf_counter()
    final = engine.run()
    wall = time.perf_counter() - start
    return final, wall, engine.stats


def experiment():
    rows = []
    for n_flows in FLOW_COUNTS:
        platform = _make_platform(n_flows)
        t_inc, w_inc, s_inc = crossbar_stage(platform, n_flows, full=False)
        t_full, w_full, s_full = crossbar_stage(platform, n_flows, full=True)
        assert t_inc == t_full, (
            f"incremental sharing changed the simulation at {n_flows} "
            f"flows: {t_inc} != {t_full}"
        )
        assert s_inc.capacity_events == s_full.capacity_events
        rows.append((n_flows, w_inc, s_inc, w_full, s_full))
    return rows


def test_ablation_faults(once):
    rows = once(experiment)
    report = FigureReport(
        "ablation_faults",
        "incremental vs full re-share under capacity events",
    )
    report.line(f"  {'flows':>6} {'mode':>6} {'wall':>9} {'shares':>7} "
                f"{'flows resolved':>14} {'resolved/share':>14}")
    for n_flows, w_inc, s_inc, w_full, s_full in rows:
        for mode, wall, stats in (("incr", w_inc, s_inc),
                                  ("full", w_full, s_full)):
            report.line(
                f"  {n_flows:>6} {mode:>6} {wall * 1e3:>7.1f}ms "
                f"{stats.shares:>7} {stats.flows_resolved:>14} "
                f"{stats.flows_resolved / max(stats.shares, 1):>14.1f}"
            )
    n_big, w_inc, s_inc, w_full, s_full = rows[-1]
    resolve_ratio = s_full.flows_resolved / max(s_inc.flows_resolved, 1)
    report.line()
    report.measured(
        f"at {n_big} flows with {s_inc.capacity_events} capacity events the "
        f"incremental solver resolves {resolve_ratio:.0f}x fewer flows and "
        f"runs {w_full / w_inc:.1f}x faster wall-clock, at bit-identical "
        "simulated times"
    )
    report.finish()

    assert resolve_ratio >= 5.0, (
        f"expected >=5x fewer flow re-solves at {n_big} flows, "
        f"got {resolve_ratio:.1f}x"
    )
    assert w_inc < w_full, (
        f"incremental solver should be faster at {n_big} flows: "
        f"{w_inc:.3f}s vs {w_full:.3f}s"
    )
