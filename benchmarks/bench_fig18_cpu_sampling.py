"""Fig. 18 — impact of CPU sampling on simulation time and accuracy
(NAS EP class B structure, 4 processes).

Sweeps the SMPI_SAMPLE_LOCAL sampling ratio 100 % → 25 %.  Paper shape:
the *simulation* (wall-clock) time decreases linearly with the ratio —
executing a quarter of the iterations takes about a quarter of the time —
while the *simulated* execution time stays flat (EP is perfectly regular,
so replaying averages loses nothing).
"""

from __future__ import annotations

import numpy as np

from _helpers import FigureReport
from repro.nas import ep_app
from repro.platforms import griffon
from repro.smpi import SmpiConfig, smpirun

N_PROCS = 4
CHUNKS = 4096  # the paper's "4096 iterations"
PAIRS = 1024
RATIOS = [1.0, 0.75, 0.5, 0.25]


def experiment():
    rows = []
    for ratio in RATIOS:
        result = smpirun(
            ep_app, N_PROCS, griffon(N_PROCS),
            app_args=(CHUNKS, PAIRS, ratio),
            config=SmpiConfig(),
        )
        rows.append((ratio, result.wall_time, result.simulated_time))
    return rows


def test_fig18(once):
    rows = once(experiment)
    report = FigureReport(
        "fig18", "CPU sampling ratio vs simulation time (NAS EP, 4 procs)"
    )
    report.line(f"  {'ratio':>7} {'simulation wall':>16} {'simulated time':>16}")
    for ratio, wall, simulated in rows:
        report.line(f"  {ratio * 100:>6.0f}% {wall:>15.3f}s {simulated:>15.4f}s")
    wall_100 = rows[0][1]
    wall_25 = rows[-1][1]
    sim_times = np.asarray([r[2] for r in rows])
    report.line()
    report.paper("simulation time drops linearly with the ratio (4x at 25 %);"
                 " simulated time flat (regular application)")
    report.measured(
        f"wall {wall_100:.2f}s -> {wall_25:.2f}s "
        f"({wall_100 / wall_25:.2f}x reduction); simulated time spread "
        f"{sim_times.std() / sim_times.mean() * 100:.2f}%"
    )
    report.finish()

    # simulation sped up substantially (the engine overhead puts a floor
    # under the ideal 4x, like the constant parts of the paper's Fig. 18)
    assert wall_100 / wall_25 > 1.8
    # wall time decreases monotonically with the sampling ratio
    walls = [r[1] for r in rows]
    assert all(a >= b * 0.9 for a, b in zip(walls, walls[1:]))
    # accuracy is unaffected: the simulated times stay within the jitter
    # of the host's burst measurements (the bursts are *really* timed with
    # perf_counter, so background load moves all ratios alike)
    assert sim_times.std() / sim_times.mean() < 0.15
