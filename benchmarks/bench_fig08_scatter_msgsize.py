"""Fig. 8 — binomial scatter accuracy vs message size, 16 processes.

Sweeps the per-rank chunk size and compares SMPI's simulated completion
time (slowest rank) against the OpenMPI reference.  Paper shape: accurate
(<10 % error) above ~10 KiB; *underestimates* below, because the
continuous flow approximation is optimistic for small messages whose
packet serialisation is not amortised.
"""

from __future__ import annotations

import numpy as np

from _helpers import (
    FORCE_BINOMIAL,
    SEED,
    FigureReport,
    griffon_calibration,
    scatter_app,
    smpi_run,
)
from repro.calibration.calibrate import replay_config
from repro.metrics import compare_series
from repro.platforms import griffon
from repro.refcluster import OPENMPI, run_reference

N_PROCS = 16
SIZES = [256, 1024, 4096, 16_384, 65_536, 262_144, 1_048_576, 4_194_304]


def experiment():
    models = griffon_calibration()
    cfg = replay_config(OPENMPI.config(coll_algorithms=FORCE_BINOMIAL))
    reference, simulated = [], []
    for size in SIZES:
        ref = run_reference(
            scatter_app, N_PROCS, griffon(N_PROCS),
            app_args=(size,), seed=SEED,
            config_overrides={"coll_algorithms": FORCE_BINOMIAL},
        )
        reference.append(max(ref.returns))
        smpi = smpi_run(scatter_app, N_PROCS, griffon(N_PROCS),
                        models.piecewise, app_args=(size,), config=cfg)
        simulated.append(max(smpi.returns))
    return compare_series("scatter", SIZES, simulated, reference)


def test_fig08(once):
    comparison = once(experiment)
    report = FigureReport(
        "fig08", "binomial scatter accuracy vs message size (16 procs)"
    )
    report.line(comparison.table("chunk_B"))
    report.line()
    report.paper("over 10 KiB: reasonably accurate (<10 % error); "
                 "smaller messages are underestimated")
    report.measured(comparison.row())
    report.finish()

    sizes = np.asarray(SIZES, dtype=float)
    errors = np.abs(np.log(comparison.measured) - np.log(comparison.reference))
    large = errors[sizes >= 65_536]
    assert (np.exp(large) - 1).mean() < 0.15, "large messages should be accurate"
    small_bias = (
        comparison.measured[sizes <= 4096] <= comparison.reference[sizes <= 4096]
    )
    assert small_bias.mean() >= 0.5, "small messages trend optimistic"
