"""Fig. 12 — pairwise all-to-all accuracy vs message size, 16 processes.

Paper shape: same story as the scatter sweep (Fig. 8) but harsher — the
continuous-flow optimism for small messages compounds across the P
simultaneous flows, giving 28.7 % average error overall (worst 80 %),
while large messages stay accurate.
"""

from __future__ import annotations

import numpy as np

from _helpers import (
    FORCE_PAIRWISE,
    SEED,
    FigureReport,
    alltoall_app,
    griffon_calibration,
    smpi_run,
)
from repro.calibration.calibrate import replay_config
from repro.metrics import compare_series
from repro.platforms import griffon
from repro.refcluster import OPENMPI, run_reference

N_PROCS = 16
SIZES = [256, 2048, 16_384, 131_072, 1_048_576, 4_194_304]


def experiment():
    models = griffon_calibration()
    cfg = replay_config(OPENMPI.config(coll_algorithms=FORCE_PAIRWISE))
    reference, simulated = [], []
    for size in SIZES:
        ref = run_reference(
            alltoall_app, N_PROCS, griffon(N_PROCS), app_args=(size,),
            seed=SEED, config_overrides={"coll_algorithms": FORCE_PAIRWISE},
        )
        reference.append(max(ref.returns))
        smpi = smpi_run(alltoall_app, N_PROCS, griffon(N_PROCS),
                        models.piecewise, app_args=(size,), config=cfg)
        simulated.append(max(smpi.returns))
    return compare_series("alltoall", SIZES, simulated, reference)


def test_fig12(once):
    comparison = once(experiment)
    report = FigureReport(
        "fig12", "pairwise all-to-all accuracy vs message size (16 procs)"
    )
    report.line(comparison.table("chunk_B"))
    report.line()
    report.paper("avg error 28.7 %, worst 80 %; small messages underestimated")
    report.measured(comparison.row())
    report.finish()

    sizes = np.asarray(SIZES, dtype=float)
    errors = np.exp(
        np.abs(np.log(comparison.measured) - np.log(comparison.reference))
    ) - 1.0
    assert errors[sizes >= 1_048_576].mean() < 0.15, "large messages accurate"
    # the paper's robust claim: small/medium messages are modelled worse
    # than large ones.  (The *sign* of the small-message error depends on
    # the testbed's packet-level details; see EXPERIMENTS.md.)
    small = sizes <= 16_384
    assert errors[small].max() > errors[sizes >= 1_048_576].mean()
