"""Ablation — execution-context backends (coroutine vs greenlet vs thread).

The historical design parks every rank on its own OS thread and moves a
baton of ``threading.Event`` pairs between them: two kernel round-trips
per context switch, plus one kernel stack per rank.  The coroutine
backend replaces all of that with generator continuations resumed on the
scheduler's own stack — a context switch is one Python frame activation.

This bench measures both layers of the claim:

* a switch microbenchmark — many actors, many pure yields, negligible
  engine work — reporting wall time *per context switch* for each
  backend at growing rank counts;
* the NAS DT end-to-end wall time per backend, at bit-identical
  simulated clocks (the backends are a pure implementation choice).
"""

from __future__ import annotations

import time

from _helpers import FigureReport
from repro.nas import dt_app, dt_graph
from repro.simix import Scheduler, greenlet_available
from repro.smpi import smpirun
from repro.surf import Engine, cluster

RANK_COUNTS = (64, 256)
YIELD_ROUNDS = 40


def backends():
    return ["coroutine", "thread"] + (
        ["greenlet"] if greenlet_available() else []
    )


def switch_storm(n_ranks: int, ctx: str):
    """N actors, each yielding R times: (wall, switches, wall-per-switch).

    The workload is pure context traffic — every resume does one loop
    iteration and parks again — so wall/switches isolates what one
    suspend/resume pair costs on each backend, including the per-actor
    setup (thread spawn vs generator allocation).
    """
    sched = Scheduler(Engine(cluster("ctxsw", n_ranks)), ctx=ctx)

    def storm():
        me = sched.current
        for _ in range(YIELD_ROUNDS):
            yield from me.co_yield_now()

    for i in range(n_ranks):
        sched.add_actor(f"a{i}", f"node-{i}", storm)
    start = time.perf_counter()
    sched.run()
    wall = time.perf_counter() - start
    switches = sched.engine.stats.ctx_switches
    return wall, switches, wall / switches


def nas_dt_wall(ctx: str):
    """One NAS DT (BH, class A) run: (simulated clock, wall seconds)."""
    graph = dt_graph("BH", "A")
    platform = cluster("ctxdt", graph.n_ranks)
    start = time.perf_counter()
    result = smpirun(dt_app, graph.n_ranks, platform, app_args=(graph,),
                     ctx=ctx)
    wall = time.perf_counter() - start
    return result.simulated_time, wall


def experiment():
    storm_rows = []
    for n_ranks in RANK_COUNTS:
        row = {}
        for ctx in backends():
            row[ctx] = switch_storm(n_ranks, ctx)
        storm_rows.append((n_ranks, row))
    dt_rows = {ctx: nas_dt_wall(ctx) for ctx in backends()}
    return storm_rows, dt_rows


def test_ablation_contexts(once):
    storm_rows, dt_rows = once(experiment)
    report = FigureReport(
        "ablation_contexts",
        "execution-context backends: per-switch cost and NAS DT wall",
    )
    report.line(f"  {'ranks':>6} {'backend':>10} {'wall':>9} "
                f"{'switches':>9} {'cost/switch':>12}")
    for n_ranks, row in storm_rows:
        for ctx, (wall, switches, per) in row.items():
            report.line(
                f"  {n_ranks:>6} {ctx:>10} {wall * 1e3:>7.1f}ms "
                f"{switches:>9} {per * 1e6:>10.2f}us"
            )
    report.line()
    report.line(f"  NAS DT (BH class A, "
                f"{dt_graph('BH', 'A').n_ranks} ranks):")
    for ctx, (simulated, wall) in dt_rows.items():
        report.line(f"  {'':>6} {ctx:>10} {wall * 1e3:>7.1f}ms "
                    f"(simulated {simulated:.6f}s)")

    # headline: per-switch cost at the largest rank count
    _, big = storm_rows[-1]
    speedup = big["thread"][2] / big["coroutine"][2]
    report.line()
    report.measured(
        f"coroutine context switches are {speedup:.0f}x cheaper than the "
        f"thread baton at {RANK_COUNTS[-1]} ranks; NAS DT wall drops "
        f"{dt_rows['thread'][1] / dt_rows['coroutine'][1]:.1f}x"
    )
    report.finish()

    clocks = {simulated for simulated, _ in dt_rows.values()}
    assert len(clocks) == 1, f"backends disagree on simulated time: {dt_rows}"
    assert speedup >= 5.0, (
        f"expected >=5x cheaper context switches on the coroutine backend "
        f"at {RANK_COUNTS[-1]} ranks, got {speedup:.1f}x"
    )
