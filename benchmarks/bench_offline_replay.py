"""On-line vs off-line comparison bench (paper section 2 made measurable).

Not a paper figure — the paper *argues* the on-line/off-line trade-off in
prose; this bench quantifies it on our stack:

* consistency: a trace replayed on its recording platform reproduces the
  on-line simulated time exactly, for every DT scheme;
* speed: replay runs faster than the on-line simulation (no application
  code, no payload movement) — the classic attraction of off-line tools;
* portability: the same trace replays across platforms, tracking the
  on-line prediction within a small margin even though the replay knows
  nothing about the application.
"""

from __future__ import annotations

import numpy as np

from _helpers import FigureReport
from repro.nas import dt_app, dt_graph
from repro.offline import record_trace, replay_trace
from repro.platforms import griffon
from repro.smpi import smpirun
from repro.surf import cluster


def experiment():
    rows = []
    for scheme in ("WH", "BH", "SH"):
        cls = "A" if scheme != "SH" else "W"
        graph = dt_graph(scheme, cls)
        online, trace = record_trace(
            dt_app, graph.n_ranks, griffon(graph.n_ranks), app_args=(graph,)
        )
        same = replay_trace(trace, griffon(graph.n_ranks))

        # cross-platform: upgrade the network, compare replay vs fresh online
        upgraded = cluster(f"up-{scheme}", graph.n_ranks,
                           link_bandwidth="1.25GBps",
                           backbone_bandwidth="2.5GBps")
        replay_up = replay_trace(trace, upgraded)
        online_up = smpirun(dt_app, graph.n_ranks,
                            cluster(f"up2-{scheme}", graph.n_ranks,
                                    link_bandwidth="1.25GBps",
                                    backbone_bandwidth="2.5GBps"),
                            app_args=(graph,))
        rows.append({
            "name": f"{scheme}-{cls}",
            "online_t": online.simulated_time,
            "replay_t": same.simulated_time,
            "online_wall": online.wall_time,
            "replay_wall": same.wall_time,
            "replay_up": replay_up.simulated_time,
            "online_up": online_up.simulated_time,
        })
    return rows


def test_offline_replay(once):
    rows = once(experiment)
    report = FigureReport(
        "offline_replay", "on-line vs off-line (trace replay) simulation"
    )
    report.line(
        f"  {'DT':>6} {'online sim':>11} {'replay sim':>11} "
        f"{'online wall':>12} {'replay wall':>12} {'upgraded: replay/online':>24}"
    )
    for row in rows:
        report.line(
            f"  {row['name']:>6} {row['online_t']:>10.4f}s "
            f"{row['replay_t']:>10.4f}s {row['online_wall']:>11.3f}s "
            f"{row['replay_wall']:>11.3f}s "
            f"{row['replay_up']:>11.4f}s / {row['online_up']:<9.4f}s"
        )
    report.line()
    report.measured(
        "replay on the recording platform matches on-line exactly; "
        "replay wall time is lower (no app code, no payloads); "
        "cross-platform replays track fresh on-line runs"
    )
    report.finish()

    for row in rows:
        assert row["replay_t"] == pytest_approx(row["online_t"])
        # cross-platform prediction within 15 % of a fresh on-line run
        drift = abs(np.log(row["replay_up"]) - np.log(row["online_up"]))
        assert (np.exp(drift) - 1) < 0.15, row["name"]
    # off-line is cheaper to run for the data-heavy schemes
    heavy = [r for r in rows if r["name"].startswith(("BH", "WH"))]
    assert any(r["replay_wall"] < r["online_wall"] for r in heavy)


def pytest_approx(value):
    import pytest

    return pytest.approx(value, rel=1e-12)
