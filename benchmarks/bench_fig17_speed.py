"""Fig. 17 — simulation time vs simulated/real execution time for a
binomial scatter (16 procs) with growing message sizes.

Three series in the paper: the (real) OpenMPI execution time, SMPI's
*simulated* execution time (its prediction, should track OpenMPI), and
SMPI's *simulation* wall-clock time (how long the prediction took to
compute).  Paper numbers: SMPI runs 3.58x faster than reality at 4 MiB
and 5.25x at 64 MiB, while predicting within ~4 %.

Here the "real execution time" is the packet-level testbed's simulated
time — what the cluster would take — and the simulation time is the
actual wall-clock of the SMPI flow-level run on this machine.  The shape
to reproduce: simulation much faster than execution, and the advantage
*grows with message size* (flow solving is size-independent, reality is
not).
"""

from __future__ import annotations

import numpy as np

from _helpers import (
    FORCE_BINOMIAL,
    SEED,
    FigureReport,
    griffon_calibration,
    scatter_app,
    smpi_run,
)
from repro.calibration.calibrate import replay_config
from repro.metrics import compare_series
from repro.platforms import griffon
from repro.refcluster import OPENMPI, run_reference

N_PROCS = 16
SIZES_MIB = [4, 8, 16, 32, 64]


def experiment():
    models = griffon_calibration()
    cfg = replay_config(OPENMPI.config(coll_algorithms=FORCE_BINOMIAL))
    cfg_folded = cfg.with_options(zero_copy=True)
    rows = []
    for size_mib in SIZES_MIB:
        chunk = size_mib * 1024 * 1024
        ref = run_reference(
            scatter_app, N_PROCS, griffon(N_PROCS), app_args=(chunk,),
            seed=SEED, config_overrides={"coll_algorithms": FORCE_BINOMIAL},
        )
        real_time = ref.simulated_time
        online = smpi_run(scatter_app, N_PROCS, griffon(N_PROCS),
                          models.piecewise, app_args=(chunk,), config=cfg)
        folded = smpi_run(scatter_app, N_PROCS, griffon(N_PROCS),
                          models.piecewise, app_args=(chunk,),
                          config=cfg_folded)
        rows.append((size_mib, real_time, online.simulated_time,
                     online.wall_time, folded.wall_time))
    return rows


def test_fig17(once):
    rows = once(experiment)
    report = FigureReport(
        "fig17", "simulation time vs execution time, scatter 16 procs"
    )
    report.line(
        f"  {'MiB':>5} {'execution(OpenMPI)':>20} {'SMPI simulated':>16} "
        f"{'wall(on-line)':>14} {'wall(folded)':>13} {'speedup':>9}"
    )
    for size_mib, real, simulated, wall, wall_folded in rows:
        report.line(
            f"  {size_mib:>5} {real:>19.3f}s {simulated:>15.3f}s "
            f"{wall:>13.3f}s {wall_folded:>12.3f}s {real / wall_folded:>8.0f}x"
        )
    accuracy = compare_series(
        "prediction", [r[0] for r in rows],
        [r[2] for r in rows], [r[1] for r in rows],
    )
    report.line()
    report.paper("SMPI 3.58x faster than reality at 4 MiB, 5.25x at 64 MiB, "
                 "while predicting within ~4 %")
    folded_speedups = [real / wf for _s, real, _sim, _w, wf in rows]
    online_speedups = [real / w for _s, real, _sim, w, _wf in rows]
    report.measured(
        f"on-line speedups {online_speedups[0]:.1f}x..{online_speedups[-1]:.1f}x "
        f"(bounded by Python memcpy, see EXPERIMENTS.md); payload-folded "
        f"speedups {folded_speedups[0]:.0f}x -> {folded_speedups[-1]:.0f}x; "
        f"prediction accuracy: {accuracy.row()}"
    )
    report.finish()

    assert accuracy.mean_error_pct < 10.0
    # on-line speedups are wall-clock measurements: keep the bound loose
    # so background load cannot flake the bench
    assert all(s > 0.7 for s in online_speedups)
    # the paper's trend — the advantage grows with message size — holds on
    # the folded path, where simulation cost is size-independent
    assert folded_speedups[-1] > 2.0 * folded_speedups[0]
    assert folded_speedups[0] > 3.0


def test_fig17_simulation_cost_size_independent(once):
    """Companion check: SMPI's wall time is near-flat in message size —
    the analytical model's defining property."""

    def walls():
        models = griffon_calibration()
        cfg = replay_config(
            OPENMPI.config(coll_algorithms=FORCE_BINOMIAL)
        ).with_options(zero_copy=True)
        out = []
        for size_mib in (4, 64):
            chunk = size_mib * 1024 * 1024
            smpi = smpi_run(scatter_app, N_PROCS, griffon(N_PROCS),
                            models.piecewise, app_args=(chunk,), config=cfg)
            out.append(smpi.wall_time)
        return out

    wall_small, wall_large = once(walls)
    # 16x the bytes must cost far less than 16x the wall time once the
    # payload path is folded (the analytical model is size-independent)
    assert wall_large < 8 * wall_small
