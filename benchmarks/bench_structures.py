"""Figs. 6, 10, 13, 14 — the communication-scheme diagrams.

These figures are structural, not quantitative: the binomial scatter tree
(Fig. 6), the pairwise all-to-all steps (Fig. 10), and the DT BH/WH
graphs for class A (Figs. 13/14).  This bench regenerates each structure,
prints it, and checks it against the paper's explicit features (node
counts, specific edges, per-step permutations).
"""

from __future__ import annotations

from _helpers import FigureReport
from repro.nas import bh_graph, wh_graph
from repro.smpi.coll import binomial_tree_edges, pairwise_schedule
from repro.surf.maxmin import IncrementalMaxMin


def experiment():
    return {
        "binomial16": binomial_tree_edges(16),
        "pairwise4": pairwise_schedule(4),
        "bh_a": bh_graph("A"),
        "wh_a": wh_graph("A"),
    }


def test_structures(once):
    data = once(experiment)
    report = FigureReport(
        "structures", "communication schemes (Figs. 6, 10, 13, 14)"
    )

    report.line("Fig. 6 — binomial scatter tree, 16 processes:")
    tree = data["binomial16"]
    report.line("  " + ", ".join(f"{s}->{d} ({c} chunks)" for s, d, c in tree))

    report.line()
    report.line("Fig. 10 — pairwise all-to-all, 4 processes, per step:")
    for i, step in enumerate(data["pairwise4"]):
        report.line(
            f"  step {i + 1}: " + ", ".join(f"{s}->{d}" for s, d in step)
        )

    bh = data["bh_a"]
    wh = data["wh_a"]
    report.line()
    report.line(f"Fig. 13 — BH class A: {bh.n_ranks} processes, "
                f"{len(bh.sources())} sources -> "
                f"{len(bh.nodes) - len(bh.sources()) - len(bh.sinks())} "
                f"comparators -> {len(bh.sinks())} sink")
    report.line(f"Fig. 14 — WH class A: {wh.n_ranks} processes, "
                f"{len(wh.sources())} source -> ... -> "
                f"{len(wh.sinks())} consumers")
    report.finish()

    # Fig. 6's headline edges
    assert (0, 8, 8) in tree and (0, 4, 4) in tree and (8, 12, 4) in tree
    # Fig. 10: 4 steps, each a permutation; step 1 is the self-copy
    assert data["pairwise4"][0] == [(0, 0), (1, 1), (2, 2), (3, 3)]
    assert len(data["pairwise4"]) == 4
    # Figs. 13/14: 21 processes, mirror structure
    assert bh.n_ranks == wh.n_ranks == 21
    assert len(bh.sources()) == len(wh.sinks()) == 16
    assert len(bh.sinks()) == len(wh.sources()) == 1


def solver_layout_experiment(n_cons: int = 32, n_live: int = 256,
                             n_cycles: int = 40):
    """Flattened solver state layout under sustained flow churn.

    Holds ``n_live`` flows over ``n_cons`` constraints and replaces all of
    them ``n_cycles`` times, sampling the sizes of the slot arrays, the
    pooled CSR incidence, and the constraint table after each cycle.  The
    structural claim: every array stabilises after warm-up — slot and
    constraint-index free-lists recycle storage, pool compaction reclaims
    dead incidence entries, and drained-constraint GC keeps ``_cons``
    keyed only by live resources.
    """
    inc = IncrementalMaxMin()

    def churn_cycle(base):
        for c in range(n_cons):
            inc.ensure_constraint(("l", c), 100.0 * (1 + c % 7))
        for i in range(n_live):
            inc.add_flow(base + i, [("l", i % n_cons), ("l", (i * 7) % n_cons)])
        inc.solve_dirty()
        for i in range(n_live):
            inc.remove_flow(base + i)
        inc.solve_dirty()

    footprint = []
    for cycle in range(n_cycles):
        churn_cycle(cycle * n_live)
        footprint.append({
            "cons": len(inc._cons),
            "slots": inc._n_slots,
            "rate_arr": len(inc._rate_arr),
            "pool": len(inc._inc_pool),
            "pool_used": inc._pool_used,
        })
    return footprint


def test_solver_state_layout(once):
    footprint = once(solver_layout_experiment)
    report = FigureReport(
        "solver_layout",
        "flattened incremental-solver state under churn (bounded growth)",
    )
    report.line("  256 flows x 32 constraints fully replaced per cycle:")
    for label in ("first", "last"):
        sample = footprint[0 if label == "first" else -1]
        report.line(
            f"  {label} cycle: {sample['cons']} constraint records, "
            f"{sample['slots']} flow slots ({sample['rate_arr']} rate-array "
            f"entries), {sample['pool']}-entry incidence pool "
            f"({sample['pool_used']} cursor)"
        )
    report.measured(
        "state footprint is flat after warm-up: slot/constraint free-lists "
        "recycle storage, pool compaction caps the incidence cursor, and "
        "drained-constraint GC empties the record table between cycles"
    )
    report.finish()

    steady = footprint[2:]
    # all flows are removed at cycle end; GC must leave no constraint records
    assert all(s["cons"] == 0 for s in footprint)
    # array/pool sizes are identical across every post-warm-up cycle
    assert all(s == steady[0] for s in steady)
    # and bounded by a small multiple of the live set (2 entries per flow)
    assert steady[0]["slots"] <= 4 * 256
    assert steady[0]["pool"] <= 16 * 256
