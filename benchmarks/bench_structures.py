"""Figs. 6, 10, 13, 14 — the communication-scheme diagrams.

These figures are structural, not quantitative: the binomial scatter tree
(Fig. 6), the pairwise all-to-all steps (Fig. 10), and the DT BH/WH
graphs for class A (Figs. 13/14).  This bench regenerates each structure,
prints it, and checks it against the paper's explicit features (node
counts, specific edges, per-step permutations).
"""

from __future__ import annotations

from _helpers import FigureReport
from repro.nas import bh_graph, wh_graph
from repro.smpi.coll import binomial_tree_edges, pairwise_schedule


def experiment():
    return {
        "binomial16": binomial_tree_edges(16),
        "pairwise4": pairwise_schedule(4),
        "bh_a": bh_graph("A"),
        "wh_a": wh_graph("A"),
    }


def test_structures(once):
    data = once(experiment)
    report = FigureReport(
        "structures", "communication schemes (Figs. 6, 10, 13, 14)"
    )

    report.line("Fig. 6 — binomial scatter tree, 16 processes:")
    tree = data["binomial16"]
    report.line("  " + ", ".join(f"{s}->{d} ({c} chunks)" for s, d, c in tree))

    report.line()
    report.line("Fig. 10 — pairwise all-to-all, 4 processes, per step:")
    for i, step in enumerate(data["pairwise4"]):
        report.line(
            f"  step {i + 1}: " + ", ".join(f"{s}->{d}" for s, d in step)
        )

    bh = data["bh_a"]
    wh = data["wh_a"]
    report.line()
    report.line(f"Fig. 13 — BH class A: {bh.n_ranks} processes, "
                f"{len(bh.sources())} sources -> "
                f"{len(bh.nodes) - len(bh.sources()) - len(bh.sinks())} "
                f"comparators -> {len(bh.sinks())} sink")
    report.line(f"Fig. 14 — WH class A: {wh.n_ranks} processes, "
                f"{len(wh.sources())} source -> ... -> "
                f"{len(wh.sinks())} consumers")
    report.finish()

    # Fig. 6's headline edges
    assert (0, 8, 8) in tree and (0, 4, 4) in tree and (8, 12, 4) in tree
    # Fig. 10: 4 steps, each a permutation; step 1 is the self-copy
    assert data["pairwise4"][0] == [(0, 0), (1, 1), (2, 2), (3, 3)]
    assert len(data["pairwise4"]) == 4
    # Figs. 13/14: 21 processes, mirror structure
    assert bh.n_ranks == wh.n_ranks == 21
    assert len(bh.sources()) == len(wh.sinks()) == 16
    assert len(bh.sinks()) == len(wh.sources()) == 1
