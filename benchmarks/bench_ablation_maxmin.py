"""Ablation — max-min solver implementations and incremental re-sharing.

DESIGN.md commits to two cross-checked solvers with a size-based switch
(`VECTORIZE_THRESHOLD`).  This bench measures both on growing systems and
prints where the crossover actually falls on this machine, validating the
constant baked into :mod:`repro.surf.maxmin`.

The second half ablates the engine's *incremental* re-sharing: the same
scatter / all-to-all workloads run once with the dirty-set solver
(:class:`IncrementalMaxMin`) and once with ``full_reshare=True``, and the
``EngineStats`` counters show how many flow re-solves the connected-
component decomposition avoids while producing the exact same completion
times.
"""

from __future__ import annotations

import math
import time

import numpy as np

from _helpers import FigureReport
from repro import rng as rng_mod
from repro.smpi import SmpiConfig, smpirun
from repro.surf import Engine, cluster
from repro.surf.maxmin import (
    MaxMinSystem,
    VECTORIZE_THRESHOLD,
    solve_maxmin_reference,
    solve_maxmin_vectorized,
)


def random_system(n_flows: int, n_cons: int, seed: int) -> MaxMinSystem:
    gen = rng_mod.substream(seed, "ablation-maxmin", n_flows)
    system = MaxMinSystem()
    for i in range(n_cons):
        system.add_constraint(f"c{i}", float(gen.uniform(10, 1000)))
    for i in range(n_flows):
        k = int(gen.integers(1, min(4, n_cons) + 1))
        cids = tuple(sorted(gen.choice(n_cons, size=k, replace=False).tolist()))
        bound = math.inf if gen.random() < 0.5 else float(gen.uniform(1, 500))
        system.add_flow(f"f{i}", cids, bound=bound)
    return system


def time_solver(solver, system, repeats=30) -> float:
    best = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        solver(system)
        best = min(best, time.perf_counter() - start)
    return best


def experiment():
    rows = []
    for n_flows in (4, 8, 16, 32, 64, 128, 256, 512):
        n_cons = max(2, n_flows // 2)
        system = random_system(n_flows, n_cons, seed=1)
        ref = solve_maxmin_reference(system)
        vec = solve_maxmin_vectorized(system)
        np.testing.assert_allclose(ref, vec, rtol=1e-9, atol=1e-9)
        t_ref = time_solver(solve_maxmin_reference, system)
        t_vec = time_solver(solve_maxmin_vectorized, system)
        rows.append((n_flows, t_ref, t_vec))
    return rows


# -- incremental vs full re-share -----------------------------------------------------

#: per-rank payload variability seed and compute cost of "processing" a
#: scattered chunk (flops per byte) — enough to overlap the collective
INCREMENTAL_SEED = 42
SCATTER_FLOPS_PER_BYTE = 100.0
N_RANKS = 16


def _chunk_sizes(n: int, base: int, seed: int) -> list[int]:
    gen = rng_mod.substream(seed, "ablation-maxmin", "sizes")
    return [int(base * (0.5 + gen.random())) for _ in range(n)]


def _displs(counts: list[int]) -> list[int]:
    displs, offset = [], 0
    for count in counts:
        displs.append(offset)
        offset += count
    return displs


def scatterv_compute_app(mpi, base: int):
    """Root scatters rank-dependent chunks; every rank processes its own.

    The per-rank compute actions are disjoint max-min components that
    complete at staggered times while the scatter is still draining —
    exactly the structure incremental re-sharing exploits.
    """
    comm = mpi.COMM_WORLD
    counts = _chunk_sizes(mpi.size, base, INCREMENTAL_SEED)
    recv = np.zeros(counts[mpi.rank], dtype=np.uint8)
    send = np.zeros(sum(counts), dtype=np.uint8) if mpi.rank == 0 else None
    comm.Barrier()
    start = mpi.wtime()
    comm.Scatterv(send, counts, _displs(counts), recv, root=0)
    mpi.execute(counts[mpi.rank] * SCATTER_FLOPS_PER_BYTE)
    return mpi.wtime() - start


def alltoallv_app(mpi, base: int):
    """Pairwise all-to-all with per-pair payload sizes (MPI_Alltoallv)."""
    comm = mpi.COMM_WORLD
    n = mpi.size
    all_counts = [_chunk_sizes(n, base, INCREMENTAL_SEED + i) for i in range(n)]
    send_counts = all_counts[mpi.rank]
    recv_counts = [all_counts[i][mpi.rank] for i in range(n)]
    send = np.zeros(sum(send_counts), dtype=np.uint8)
    recv = np.zeros(sum(recv_counts), dtype=np.uint8)
    comm.Barrier()
    start = mpi.wtime()
    comm.Alltoallv(send, send_counts, _displs(send_counts),
                   recv, recv_counts, _displs(recv_counts))
    return mpi.wtime() - start


INCREMENTAL_WORKLOADS = [
    ("scatter 4MiB + compute", scatterv_compute_app, 4 << 20,
     {"scatter": "binomial"}),
    ("all-to-all 1MiB pairwise", alltoallv_app, 1 << 20,
     {"alltoallv": "pairwise"}),
]


def run_incremental_case(app, base: int, coll: dict, full_reshare: bool):
    """One SMPI run on a split-duplex crossbar; returns (time, stats)."""
    platform = cluster(
        "ablation", N_RANKS, backbone_bandwidth=None, split_duplex=True
    )
    engine = Engine(platform, full_reshare=full_reshare)
    result = smpirun(
        app, N_RANKS, platform,
        app_args=(base,),
        config=SmpiConfig(coll_algorithms=coll),
        engine=engine,
    )
    return result.simulated_time, engine.stats


def incremental_experiment():
    rows = []
    for label, app, base, coll in INCREMENTAL_WORKLOADS:
        t_inc, s_inc = run_incremental_case(app, base, coll, full_reshare=False)
        t_full, s_full = run_incremental_case(app, base, coll, full_reshare=True)
        rows.append((label, t_inc, t_full, s_inc, s_full))
    return rows


def test_ablation_maxmin(once):
    rows = once(experiment)
    report = FigureReport(
        "ablation_maxmin", "reference vs vectorised max-min solver"
    )
    report.line(f"  {'flows':>6} {'reference':>12} {'vectorised':>12} {'ratio':>8}")
    crossover = None
    for n_flows, t_ref, t_vec in rows:
        marker = ""
        if t_vec < t_ref and crossover is None:
            crossover = n_flows
            marker = "  <- vectorised wins"
        report.line(
            f"  {n_flows:>6} {t_ref * 1e6:>10.1f}us {t_vec * 1e6:>10.1f}us "
            f"{t_ref / t_vec:>7.2f}x{marker}"
        )
    report.line()
    report.measured(
        f"configured threshold {VECTORIZE_THRESHOLD}; measured crossover "
        f"around {crossover} flows"
    )

    # -- incremental vs full re-share ------------------------------------------------
    report.line()
    report.line("incremental vs full re-share "
                f"({N_RANKS} ranks, split-duplex crossbar):")
    report.line(f"  {'workload':<26} {'flow re-solves':>16} {'saving':>8} "
                f"{'partial':>9} {'same time':>10}")
    inc_rows = incremental_experiment()
    for label, t_inc, t_full, s_inc, s_full in inc_rows:
        ratio = s_full.flows_resolved / max(1, s_inc.flows_resolved)
        report.line(
            f"  {label:<26} {s_inc.flows_resolved:>6} vs {s_full.flows_resolved:>6} "
            f"{ratio:>7.2f}x {s_inc.partial_shares:>4}/{s_inc.shares:<4} "
            f"{str(t_inc == t_full):>10}"
        )
    report.measured(
        "incremental re-sharing solves >=2x fewer flows at identical "
        "simulated times"
    )
    report.finish()

    big = rows[-1]
    assert big[2] < big[1], "vectorised must win on large systems"
    small = rows[0]
    assert small[1] < small[2] * 5, "reference competitive on small systems"

    for label, t_inc, t_full, s_inc, s_full in inc_rows:
        assert t_inc == t_full, f"{label}: incremental changed the simulation"
        assert s_full.flows_resolved >= 2 * s_inc.flows_resolved, (
            f"{label}: expected >=2x fewer flow re-solves, got "
            f"{s_inc.flows_resolved} vs {s_full.flows_resolved}"
        )
