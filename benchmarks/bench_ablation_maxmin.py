"""Ablation — max-min solver implementations and incremental re-sharing.

DESIGN.md commits to two cross-checked solvers with a size-based switch
(`VECTORIZE_THRESHOLD`).  This bench measures both on growing systems and
prints where the crossover actually falls on this machine, validating the
constant baked into :mod:`repro.surf.maxmin`.

The second half ablates the engine's *incremental* re-sharing: the same
scatter / all-to-all workloads run once with the dirty-set solver
(:class:`IncrementalMaxMin`) and once with ``full_reshare=True``, and the
``EngineStats`` counters show how many flow re-solves the connected-
component decomposition avoids while producing the exact same completion
times.
"""

from __future__ import annotations

import json
import math
import os
import time

import numpy as np

from _helpers import RESULTS_DIR, FigureReport
from repro import rng as rng_mod
from repro.smpi import SmpiConfig, smpirun
from repro.surf import Engine, cluster
from repro.surf.maxmin import (
    APPROX_MAX_ROUNDS,
    IncrementalMaxMin,
    MaxMinSystem,
    VECTORIZE_THRESHOLD,
    _progressive_fill_arrays,
    solve_maxmin_reference,
    solve_maxmin_vectorized,
)


def random_system(n_flows: int, n_cons: int, seed: int) -> MaxMinSystem:
    gen = rng_mod.substream(seed, "ablation-maxmin", n_flows)
    system = MaxMinSystem()
    for i in range(n_cons):
        system.add_constraint(f"c{i}", float(gen.uniform(10, 1000)))
    for i in range(n_flows):
        k = int(gen.integers(1, min(4, n_cons) + 1))
        cids = tuple(sorted(gen.choice(n_cons, size=k, replace=False).tolist()))
        bound = math.inf if gen.random() < 0.5 else float(gen.uniform(1, 500))
        system.add_flow(f"f{i}", cids, bound=bound)
    return system


def time_solver(solver, system, repeats=30) -> float:
    best = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        solver(system)
        best = min(best, time.perf_counter() - start)
    return best


def experiment():
    rows = []
    for n_flows in (4, 8, 16, 32, 64, 128, 256, 512):
        n_cons = max(2, n_flows // 2)
        system = random_system(n_flows, n_cons, seed=1)
        ref = solve_maxmin_reference(system)
        vec = solve_maxmin_vectorized(system)
        np.testing.assert_allclose(ref, vec, rtol=1e-9, atol=1e-9)
        t_ref = time_solver(solve_maxmin_reference, system)
        t_vec = time_solver(solve_maxmin_vectorized, system)
        rows.append((n_flows, t_ref, t_vec))
    return rows


# -- incremental vs full re-share -----------------------------------------------------

#: per-rank payload variability seed and compute cost of "processing" a
#: scattered chunk (flops per byte) — enough to overlap the collective
INCREMENTAL_SEED = 42
SCATTER_FLOPS_PER_BYTE = 100.0
N_RANKS = 16


def _chunk_sizes(n: int, base: int, seed: int) -> list[int]:
    gen = rng_mod.substream(seed, "ablation-maxmin", "sizes")
    return [int(base * (0.5 + gen.random())) for _ in range(n)]


def _displs(counts: list[int]) -> list[int]:
    displs, offset = [], 0
    for count in counts:
        displs.append(offset)
        offset += count
    return displs


def scatterv_compute_app(mpi, base: int):
    """Root scatters rank-dependent chunks; every rank processes its own.

    The per-rank compute actions are disjoint max-min components that
    complete at staggered times while the scatter is still draining —
    exactly the structure incremental re-sharing exploits.
    """
    comm = mpi.COMM_WORLD
    counts = _chunk_sizes(mpi.size, base, INCREMENTAL_SEED)
    recv = np.zeros(counts[mpi.rank], dtype=np.uint8)
    send = np.zeros(sum(counts), dtype=np.uint8) if mpi.rank == 0 else None
    comm.Barrier()
    start = mpi.wtime()
    comm.Scatterv(send, counts, _displs(counts), recv, root=0)
    mpi.execute(counts[mpi.rank] * SCATTER_FLOPS_PER_BYTE)
    return mpi.wtime() - start


def alltoallv_app(mpi, base: int):
    """Pairwise all-to-all with per-pair payload sizes (MPI_Alltoallv)."""
    comm = mpi.COMM_WORLD
    n = mpi.size
    all_counts = [_chunk_sizes(n, base, INCREMENTAL_SEED + i) for i in range(n)]
    send_counts = all_counts[mpi.rank]
    recv_counts = [all_counts[i][mpi.rank] for i in range(n)]
    send = np.zeros(sum(send_counts), dtype=np.uint8)
    recv = np.zeros(sum(recv_counts), dtype=np.uint8)
    comm.Barrier()
    start = mpi.wtime()
    comm.Alltoallv(send, send_counts, _displs(send_counts),
                   recv, recv_counts, _displs(recv_counts))
    return mpi.wtime() - start


INCREMENTAL_WORKLOADS = [
    ("scatter 4MiB + compute", scatterv_compute_app, 4 << 20,
     {"scatter": "binomial"}),
    ("all-to-all 1MiB pairwise", alltoallv_app, 1 << 20,
     {"alltoallv": "pairwise"}),
]


def run_incremental_case(app, base: int, coll: dict, full_reshare: bool):
    """One SMPI run on a split-duplex crossbar; returns (time, stats)."""
    platform = cluster(
        "ablation", N_RANKS, backbone_bandwidth=None, split_duplex=True
    )
    engine = Engine(platform, full_reshare=full_reshare)
    result = smpirun(
        app, N_RANKS, platform,
        app_args=(base,),
        config=SmpiConfig(coll_algorithms=coll),
        engine=engine,
    )
    return result.simulated_time, engine.stats


def incremental_experiment():
    rows = []
    for label, app, base, coll in INCREMENTAL_WORKLOADS:
        t_inc, s_inc = run_incremental_case(app, base, coll, full_reshare=False)
        t_full, s_full = run_incremental_case(app, base, coll, full_reshare=True)
        rows.append((label, t_inc, t_full, s_inc, s_full))
    return rows


# -- flows-vs-wall scaling curve: exact vs approx sharing ------------------------------

#: committed scaling-curve artifact (regenerate with REPRO_BENCH_FULL=1)
SCALING_JSON = RESULTS_DIR / "maxmin_scaling.json"


def staircase_problem(n_flows: int, n_backbones: int = 4):
    """A staircase contention pattern sized for scaling runs.

    ``n_groups = max(16, n_flows // 64)`` group constraints with strictly
    increasing capacities each serve ``n_flows / n_groups`` flows; a few
    huge backbone constraints couple everything into one component.  Each
    group saturates at a distinct level, so exact progressive filling
    needs ~``n_groups`` rounds — the round count *grows* with the system,
    which is exactly the regime the approx dial is for.

    Returns the COO/array form consumed by ``_progressive_fill_arrays``
    (the solver core's steady-state representation: the incremental
    engine maintains these arrays persistently, so timing the kernel on
    them matches the per-event cost of a warm engine).
    """
    n_groups = max(16, n_flows // 64)
    n_cons = n_groups + n_backbones
    fid = np.arange(n_flows, dtype=np.intp)
    row = np.repeat(fid, 2)
    col = np.empty(2 * n_flows, dtype=np.intp)
    col[0::2] = fid % n_groups
    col[1::2] = n_groups + fid % n_backbones
    weights = np.ones(n_flows)
    bounds = np.full(n_flows, math.inf)
    shared = np.ones(n_cons, dtype=bool)
    capacities = np.concatenate([
        100.0 * (1.0 + np.arange(n_groups, dtype=float)),
        np.full(n_backbones, 1e12),
    ])
    return n_groups, (n_flows, n_cons, row, col, weights, bounds, shared,
                      capacities)


def staircase_system(n_flows: int, n_backbones: int = 4) -> MaxMinSystem:
    """The same staircase pattern as a :class:`MaxMinSystem` (reference)."""
    n_groups = max(16, n_flows // 64)
    system = MaxMinSystem()
    gids = [system.add_constraint(f"g{g}", 100.0 * (1.0 + g))
            for g in range(n_groups)]
    bids = [system.add_constraint(f"bb{b}", 1e12)
            for b in range(n_backbones)]
    for i in range(n_flows):
        system.add_flow(f"f{i}", (gids[i % n_groups], bids[i % n_backbones]))
    return system


def _best_of(fn, repeats: int = 3) -> float:
    best = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def scaling_experiment(full: bool | None = None):
    """Wall-clock per one-shot solve vs flow count, per solver.

    Smoke mode (the CI default) uses reduced sizes; set
    ``REPRO_BENCH_FULL=1`` for the committed full curve (pure-Python
    reference to 10k flows, vectorised exact to 100k, approx to 300k).
    """
    if full is None:
        full = bool(os.environ.get("REPRO_BENCH_FULL"))
    if full:
        sizes_ref = [1_000, 3_000, 10_000]
        sizes_exact = sizes_ref + [30_000, 100_000]
        sizes_approx = sizes_exact + [300_000]
    else:
        sizes_ref = [500, 2_000]
        sizes_exact = sizes_ref + [8_000]
        sizes_approx = sizes_exact + [100_000]

    def solve_arrays(args, max_rounds):
        n_flows = args[0]
        rates, rounds, truncated = _progressive_fill_arrays(
            *args, lambda fid: f"f{fid}", max_rounds=max_rounds
        )
        assert rates.shape == (n_flows,) and np.isfinite(rates).all()
        return rounds, truncated

    rows = []
    for n_flows in sizes_approx:
        n_groups, args = staircase_problem(n_flows)
        if n_flows in sizes_ref:
            system = staircase_system(n_flows)
            wall = _best_of(lambda: solve_maxmin_reference(system))
            rows.append({"solver": "reference", "n_flows": n_flows,
                         "n_groups": n_groups, "wall_s": wall,
                         "rounds": n_groups, "truncated": False})
        if n_flows in sizes_exact:
            rounds, truncated = solve_arrays(args, None)
            wall = _best_of(lambda: solve_arrays(args, None))
            rows.append({"solver": "exact", "n_flows": n_flows,
                         "n_groups": n_groups, "wall_s": wall,
                         "rounds": rounds, "truncated": truncated})
        rounds, truncated = solve_arrays(args, APPROX_MAX_ROUNDS)
        wall = _best_of(lambda: solve_arrays(args, APPROX_MAX_ROUNDS))
        rows.append({"solver": "approx", "n_flows": n_flows,
                     "n_groups": n_groups, "wall_s": wall,
                     "rounds": rounds, "truncated": truncated})
    return {"full": full, "rows": rows}


def churn_experiment(n_flows: int = 2_000, n_events: int = 200):
    """Per-event cost of the warm incremental solver, exact vs approx.

    One big coupled staircase component under flow churn: every event
    (one departure + one arrival + solve) re-solves the whole component,
    so exact pays ~``n_groups`` filling rounds per event while approx is
    capped at :data:`APPROX_MAX_ROUNDS`.
    """
    n_groups = max(16, n_flows // 64)
    out = {}
    for sharing in ("exact", "approx"):
        inc = IncrementalMaxMin(sharing=sharing)
        for g in range(n_groups):
            inc.ensure_constraint(("g", g), 100.0 * (1.0 + g))
        for b in range(4):
            inc.ensure_constraint(("bb", b), 1e12)
        for i in range(n_flows):
            inc.add_flow(i, [("g", i % n_groups), ("bb", i % 4)])
        inc.solve_dirty()
        fill_rounds = 0
        start = time.perf_counter()
        for event in range(n_events):
            inc.remove_flow(event)
            key = n_flows + event
            inc.ensure_constraint(("g", key % n_groups),
                                  100.0 * (1.0 + key % n_groups))
            inc.ensure_constraint(("bb", key % 4), 1e12)
            inc.add_flow(key, [("g", key % n_groups), ("bb", key % 4)])
            inc.solve_dirty()
            fill_rounds += inc.last_fill_rounds
        wall = time.perf_counter() - start
        out[sharing] = {"event_us": wall / n_events * 1e6,
                        "fill_rounds_per_event": fill_rounds / n_events}
    return {"n_flows": n_flows, "n_groups": n_groups, "n_events": n_events,
            **{k: v for k, v in out.items()}}


def test_maxmin_scaling(once):
    data = once(scaling_experiment)
    churn = churn_experiment()
    full = data["full"]
    rows = data["rows"]

    report = FigureReport(
        "maxmin_scaling",
        "flows-vs-wall scaling of the sharing solvers (exact vs approx)",
    )
    mode = "full" if full else "smoke (REPRO_BENCH_FULL=1 for the full curve)"
    report.line(f"  staircase contention, one coupled component; mode: {mode}")
    report.line(f"  {'flows':>8} {'solver':>10} {'rounds':>7} {'wall':>12}")
    by_key = {}
    for r in rows:
        by_key[(r["solver"], r["n_flows"])] = r
        trunc = "  (truncated)" if r["truncated"] else ""
        report.line(
            f"  {r['n_flows']:>8} {r['solver']:>10} {r['rounds']:>7} "
            f"{r['wall_s'] * 1e3:>10.2f}ms{trunc}"
        )
    ref_sizes = [r["n_flows"] for r in rows if r["solver"] == "reference"]
    top_ref = max(ref_sizes)
    speedup = (by_key[("reference", top_ref)]["wall_s"]
               / by_key[("exact", top_ref)]["wall_s"])
    top_approx = max(r["n_flows"] for r in rows if r["solver"] == "approx")
    top_exact = max(r["n_flows"] for r in rows if r["solver"] == "exact")
    report.line()
    report.measured(
        f"vectorised exact is {speedup:.0f}x the pure-Python reference at "
        f"{top_ref} flows; reference dropped beyond {top_ref} (impractical)"
    )
    report.measured(
        f"approx extends the curve to {top_approx} flows "
        f"(exact stops at {top_exact}), bounded at {APPROX_MAX_ROUNDS} "
        f"rounds per solve"
    )
    report.measured(
        f"warm incremental churn ({churn['n_flows']} flows): "
        f"{churn['exact']['event_us']:.0f}us/event exact "
        f"({churn['exact']['fill_rounds_per_event']:.0f} rounds) vs "
        f"{churn['approx']['event_us']:.0f}us/event approx "
        f"({churn['approx']['fill_rounds_per_event']:.0f} rounds)"
    )
    report.finish()

    SCALING_JSON.write_text(json.dumps({
        "description": "wall-clock of one solver-core solve vs concurrent "
                       "flows on a staircase contention pattern (distinct "
                       "saturation level per constraint group, one coupled "
                       "component); kernel timed on its steady-state array "
                       "form, as maintained by the incremental engine",
        "mode": "full" if full else "smoke",
        "approx_max_rounds": APPROX_MAX_ROUNDS,
        "rows": rows,
        "churn": churn,
    }, indent=2) + "\n", encoding="utf-8")

    # the acceptance bar: >=5x for vectorised exact at >=10k flows is
    # asserted on the full curve; the smoke curve keeps a looser floor so
    # CI stays robust on noisy runners
    if full:
        assert top_ref >= 10_000 and speedup >= 5.0, (
            f"expected >=5x at {top_ref} flows, got {speedup:.1f}x"
        )
        assert top_approx > 100_000
    else:
        assert speedup >= 2.0, f"expected >=2x at {top_ref}, got {speedup:.1f}x"
        assert top_approx >= 100_000
    # approx must beat exact where rounds are the bottleneck (largest
    # common size) and must actually have truncated there
    big_exact = by_key[("exact", top_exact)]
    big_approx = by_key[("approx", top_exact)]
    assert big_approx["truncated"] and not big_exact["truncated"]
    assert big_approx["wall_s"] < big_exact["wall_s"]
    assert churn["approx"]["fill_rounds_per_event"] <= APPROX_MAX_ROUNDS
    assert churn["exact"]["fill_rounds_per_event"] > APPROX_MAX_ROUNDS


def test_ablation_maxmin(once):
    rows = once(experiment)
    report = FigureReport(
        "ablation_maxmin", "reference vs vectorised max-min solver"
    )
    report.line(f"  {'flows':>6} {'reference':>12} {'vectorised':>12} {'ratio':>8}")
    crossover = None
    for n_flows, t_ref, t_vec in rows:
        marker = ""
        if t_vec < t_ref and crossover is None:
            crossover = n_flows
            marker = "  <- vectorised wins"
        report.line(
            f"  {n_flows:>6} {t_ref * 1e6:>10.1f}us {t_vec * 1e6:>10.1f}us "
            f"{t_ref / t_vec:>7.2f}x{marker}"
        )
    report.line()
    report.measured(
        f"configured threshold {VECTORIZE_THRESHOLD}; measured crossover "
        f"around {crossover} flows"
    )

    # -- incremental vs full re-share ------------------------------------------------
    report.line()
    report.line("incremental vs full re-share "
                f"({N_RANKS} ranks, split-duplex crossbar):")
    report.line(f"  {'workload':<26} {'flow re-solves':>16} {'saving':>8} "
                f"{'partial':>9} {'same time':>10}")
    inc_rows = incremental_experiment()
    for label, t_inc, t_full, s_inc, s_full in inc_rows:
        ratio = s_full.flows_resolved / max(1, s_inc.flows_resolved)
        report.line(
            f"  {label:<26} {s_inc.flows_resolved:>6} vs {s_full.flows_resolved:>6} "
            f"{ratio:>7.2f}x {s_inc.partial_shares:>4}/{s_inc.shares:<4} "
            f"{str(t_inc == t_full):>10}"
        )
    report.measured(
        "incremental re-sharing solves >=2x fewer flows at identical "
        "simulated times"
    )
    report.finish()

    big = rows[-1]
    assert big[2] < big[1], "vectorised must win on large systems"
    small = rows[0]
    assert small[1] < small[2] * 5, "reference competitive on small systems"

    for label, t_inc, t_full, s_inc, s_full in inc_rows:
        assert t_inc == t_full, f"{label}: incremental changed the simulation"
        assert s_full.flows_resolved >= 2 * s_inc.flows_resolved, (
            f"{label}: expected >=2x fewer flow re-solves, got "
            f"{s_inc.flows_resolved} vs {s_full.flows_resolved}"
        )
