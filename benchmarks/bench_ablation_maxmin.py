"""Ablation — max-min solver implementations.

DESIGN.md commits to two cross-checked solvers with a size-based switch
(`VECTORIZE_THRESHOLD`).  This bench measures both on growing systems and
prints where the crossover actually falls on this machine, validating the
constant baked into :mod:`repro.surf.maxmin`.
"""

from __future__ import annotations

import math
import time

import numpy as np

from _helpers import FigureReport
from repro import rng as rng_mod
from repro.surf.maxmin import (
    MaxMinSystem,
    VECTORIZE_THRESHOLD,
    solve_maxmin_reference,
    solve_maxmin_vectorized,
)


def random_system(n_flows: int, n_cons: int, seed: int) -> MaxMinSystem:
    gen = rng_mod.substream(seed, "ablation-maxmin", n_flows)
    system = MaxMinSystem()
    for i in range(n_cons):
        system.add_constraint(f"c{i}", float(gen.uniform(10, 1000)))
    for i in range(n_flows):
        k = int(gen.integers(1, min(4, n_cons) + 1))
        cids = tuple(sorted(gen.choice(n_cons, size=k, replace=False).tolist()))
        bound = math.inf if gen.random() < 0.5 else float(gen.uniform(1, 500))
        system.add_flow(f"f{i}", cids, bound=bound)
    return system


def time_solver(solver, system, repeats=30) -> float:
    best = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        solver(system)
        best = min(best, time.perf_counter() - start)
    return best


def experiment():
    rows = []
    for n_flows in (4, 8, 16, 32, 64, 128, 256, 512):
        n_cons = max(2, n_flows // 2)
        system = random_system(n_flows, n_cons, seed=1)
        ref = solve_maxmin_reference(system)
        vec = solve_maxmin_vectorized(system)
        np.testing.assert_allclose(ref, vec, rtol=1e-9, atol=1e-9)
        t_ref = time_solver(solve_maxmin_reference, system)
        t_vec = time_solver(solve_maxmin_vectorized, system)
        rows.append((n_flows, t_ref, t_vec))
    return rows


def test_ablation_maxmin(once):
    rows = once(experiment)
    report = FigureReport(
        "ablation_maxmin", "reference vs vectorised max-min solver"
    )
    report.line(f"  {'flows':>6} {'reference':>12} {'vectorised':>12} {'ratio':>8}")
    crossover = None
    for n_flows, t_ref, t_vec in rows:
        marker = ""
        if t_vec < t_ref and crossover is None:
            crossover = n_flows
            marker = "  <- vectorised wins"
        report.line(
            f"  {n_flows:>6} {t_ref * 1e6:>10.1f}us {t_vec * 1e6:>10.1f}us "
            f"{t_ref / t_vec:>7.2f}x{marker}"
        )
    report.line()
    report.measured(
        f"configured threshold {VECTORIZE_THRESHOLD}; measured crossover "
        f"around {crossover} flows"
    )
    report.finish()

    big = rows[-1]
    assert big[2] < big[1], "vectorised must win on large systems"
    small = rows[0]
    assert small[1] < small[2] * 5, "reference competitive on small systems"
