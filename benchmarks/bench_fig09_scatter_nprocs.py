"""Fig. 9 — binomial scatter time vs number of processes (4 MiB chunks).

The receive buffer stays 4 MiB per rank while the scattered total grows
linearly with the process count.  Paper shape: SMPI is "very consistent
with both MPI implementations for this message size" across 4..32
processes.
"""

from __future__ import annotations

import numpy as np

from _helpers import (
    FORCE_BINOMIAL,
    SEED,
    FigureReport,
    griffon_calibration,
    scatter_app,
    smpi_run,
)
from repro.calibration.calibrate import replay_config
from repro.metrics import compare_series
from repro.platforms import griffon
from repro.refcluster import MPICH2, OPENMPI, run_reference

CHUNK = 4 * 1024 * 1024
PROC_COUNTS = [4, 8, 16, 32]


def experiment():
    models = griffon_calibration()
    cfg = replay_config(OPENMPI.config(coll_algorithms=FORCE_BINOMIAL))
    series = {"OpenMPI": [], "MPICH2": [], "SMPI": []}
    for n in PROC_COUNTS:
        for label, implementation in (("OpenMPI", OPENMPI), ("MPICH2", MPICH2)):
            ref = run_reference(
                scatter_app, n, griffon(n), implementation=implementation,
                app_args=(CHUNK,), seed=SEED,
                config_overrides={"coll_algorithms": FORCE_BINOMIAL},
            )
            series[label].append(max(ref.returns))
        smpi = smpi_run(scatter_app, n, griffon(n), models.piecewise,
                        app_args=(CHUNK,), config=cfg)
        series["SMPI"].append(max(smpi.returns))
    return series


def test_fig09(once):
    series = once(experiment)
    report = FigureReport(
        "fig09", "binomial scatter vs process count (4 MiB receive buffers)"
    )
    report.line(f"  {'procs':>6} {'OpenMPI':>12} {'MPICH2':>12} {'SMPI':>12}")
    for i, n in enumerate(PROC_COUNTS):
        report.line(
            f"  {n:>6} {series['OpenMPI'][i]:>11.3f}s "
            f"{series['MPICH2'][i]:>11.3f}s {series['SMPI'][i]:>11.3f}s"
        )
    comparison = compare_series(
        "SMPI vs OpenMPI", PROC_COUNTS, series["SMPI"], series["OpenMPI"]
    )
    report.line()
    report.paper("SMPI very consistent with both implementations at 4 MiB")
    report.measured(comparison.row())
    report.finish()

    assert comparison.mean_error_pct < 12.0
    # time grows monotonically with the process count in all three series
    for label, values in series.items():
        assert (np.diff(values) > 0).all(), f"{label} should grow with P"
