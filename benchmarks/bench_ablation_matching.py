"""Ablation — indexed match queues vs the linear-scan matcher.

The pt2pt layer's matcher is a hot path: every arriving message walks
the receiver's posted queue and every posted receive walks the
unexpected queue.  The seqno-bucketed index (``SmpiConfig(match=
"index")``) makes exact matches O(1) and wildcard matches O(#candidate
buckets); the original front-to-back scan is kept as a fuzz-pinned
oracle (``match="scan"``).  This bench measures both on the workloads
where the difference shows:

* **dense many-to-one, exact sources** — rank 0 posts R rounds of
  per-peer receives up front, *globally reversed*, so the scan examines
  a deep posted queue (~(R*N)^2/2 probes total) while the index goes
  straight to the (src, tag) bucket.  This is the headline case: a
  master/worker result collection, an MPI_Gather root, an HPL panel
  broadcast root all look like this.  The dense runs use the constant
  (no-contention) network model — like the Fig. 7/11 strawman — so the
  matcher, not the bandwidth solver, is the variable under test.
* **dense many-to-one, ANY_SOURCE** — the same traffic received with
  wildcards; the index resolves a wildcard by comparing candidate
  bucket heads instead of walking the queue, so deep wildcard queues
  win too.
* **pairwise all-to-all** and the **dl_sgd ring** — realistic
  collective-heavy workloads where queues stay short; these gate that
  indexing never *loses*.

Both matchers must agree on the simulated clock bit-exactly (asserted
on every run here; fuzz-pinned in tests/test_fuzz_match.py).

Run the committed full curve (256-2048 ranks)::

    python benchmarks/bench_ablation_matching.py --full

or the CI smoke gate (256 ranks, seconds not minutes)::

    python benchmarks/bench_ablation_matching.py --smoke

Under pytest (``--benchmark-only``) the mode follows REPRO_BENCH_FULL.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from _helpers import RESULTS_DIR, FigureReport  # noqa: E402

from repro.smpi import SmpiConfig, smpirun  # noqa: E402
from repro.surf import cluster  # noqa: E402

MATCHING_JSON = RESULTS_DIR / "ablation_matching.json"

#: rank counts of the committed dense-matching curve
FULL_POINTS = [256, 1024, 2048]
#: rank counts of the CI smoke gate (the 1024 headline point costs ~2s)
SMOKE_POINTS = [256, 1024]

#: receive rounds per dense run (scan probes scale with rounds * N^2/2)
DENSE_ROUNDS = 3

#: acceptance gates at the largest dense point: the index must cut
#: per-match probes >=5x and dense wall time >=1.5x at 1024+ ranks.
#: The smoke gate keeps the probe bar and relaxes the wall bar for
#: noisy shared CI runners (measured headroom is ~3x at 1024).
PROBE_GATE = 5.0
WALL_GATE_FULL = 1.5
WALL_GATE_SMOKE = 1.2


def dense_exact_app(mpi, rounds: int):
    """Rank 0 collects one message per peer per round, posting every
    round's receives up front in *globally reversed* order — the scan
    matcher's worst case (early arrivals match the deepest entries)."""
    from repro.smpi import request as rq

    comm = mpi.COMM_WORLD
    n = mpi.size
    if mpi.rank == 0:
        recvs, bufs = [], []
        for tag in reversed(range(rounds)):
            for src in range(n - 1, 0, -1):
                buf = np.zeros(8, dtype=np.uint8)
                bufs.append(buf)
                recvs.append(comm.Irecv(buf, src, tag))
        yield from rq.co_waitall(recvs)
    else:
        payload = np.full(8, mpi.rank % 251, dtype=np.uint8)
        for tag in range(rounds):
            yield from comm.co.Send(payload, 0, tag)
    return (yield from mpi.co.wtime())


def dense_any_app(mpi, rounds: int):
    """The same many-to-one traffic received with ANY_SOURCE wildcards."""
    from repro.smpi import request as rq
    from repro.smpi.constants import ANY_SOURCE

    comm = mpi.COMM_WORLD
    n = mpi.size
    if mpi.rank == 0:
        recvs, bufs = [], []
        for tag in reversed(range(rounds)):
            for _ in range(n - 1):
                buf = np.zeros(8, dtype=np.uint8)
                bufs.append(buf)
                recvs.append(comm.Irecv(buf, ANY_SOURCE, tag))
        yield from rq.co_waitall(recvs)
    else:
        payload = np.full(8, mpi.rank % 251, dtype=np.uint8)
        for tag in range(rounds):
            yield from comm.co.Send(payload, 0, tag)
    return (yield from mpi.co.wtime())


def _alltoall_app(n_ranks: int):
    from repro.sweep.workloads import resolve

    # one 8-byte word per peer so the send buffer splits evenly
    return resolve("coll", {"collective": "alltoall", "size": 8 * n_ranks,
                            "warmup": 0, "iters": 1})


def _dl_sgd_app(n_ranks: int):
    from repro.sweep.workloads import resolve

    return resolve("dl_sgd", {"communicator": "ring", "layers": "2x1MiB",
                              "bucket": "1MiB", "steps": 1})


def run_case(app, n_ranks: int, mode: str, app_args=(),
             contention: bool = True) -> dict:
    """One measured run; returns wall, simulated time and match counters."""
    from repro.surf.network_model import ConstantNetworkModel

    platform = cluster("match", min(n_ranks, 256))
    model = None if contention else ConstantNetworkModel()
    start = time.perf_counter()
    result = smpirun(app, n_ranks, platform, app_args=app_args,
                     config=SmpiConfig(match=mode), ctx="coroutine",
                     network_model=model)
    wall = time.perf_counter() - start
    stats = result.stats
    return {
        "wall_s": wall,
        "simulated_s": result.simulated_time,
        "match_probes": stats.match_probes,
        "match_fast_hits": stats.match_fast_hits,
        "wildcard_scans": stats.wildcard_scans,
        "pooled_reuses": stats.pooled_reuses,
    }


def experiment(full: bool | None = None) -> dict:
    if full is None:
        full = bool(os.environ.get("REPRO_BENCH_FULL"))
    points = FULL_POINTS if full else SMOKE_POINTS
    top = max(points)

    # the parity workloads keep contention on (they gate that indexing
    # never loses on realistic traffic) but run at CI-friendly sizes
    n_coll = 256 if full else 128
    n_dl = 256 if full else 64
    cases = [("dense exact reversed", dense_exact_app, n, (DENSE_ROUNDS,),
              False) for n in points]
    cases += [
        ("dense ANY_SOURCE", dense_any_app, top, (DENSE_ROUNDS,), False),
        ("alltoall 8B/peer", _alltoall_app(n_coll), n_coll, (), True),
        ("dl_sgd ring 2x1MiB", _dl_sgd_app(n_dl), n_dl, (), True),
    ]

    rows = []
    for label, app, n_ranks, app_args, contention in cases:
        index = run_case(app, n_ranks, "index", app_args, contention)
        scan = run_case(app, n_ranks, "scan", app_args, contention)
        assert index["simulated_s"] == scan["simulated_s"], (
            f"{label} @ {n_ranks}: matchers disagree on the simulated clock"
        )
        rows.append({"workload": label, "n_ranks": n_ranks,
                     "index": index, "scan": scan})
    return {"full": full, "rows": rows}


def report_and_gate(data: dict) -> None:
    full = data["full"]
    rows = data["rows"]
    report = FigureReport(
        "ablation_matching",
        "indexed match queues vs linear scan (probes and wall time)",
    )
    mode = "full" if full else "smoke (REPRO_BENCH_FULL=1 for the full curve)"
    report.line(f"  {DENSE_ROUNDS} receive rounds per dense run; mode: {mode}")
    report.line(f"  {'workload':<22} {'ranks':>6} {'probes idx':>11} "
                f"{'probes scan':>12} {'ratio':>7} {'wall idx':>9} "
                f"{'wall scan':>10} {'speedup':>8}")
    for row in rows:
        idx, scn = row["index"], row["scan"]
        probe_ratio = scn["match_probes"] / max(1, idx["match_probes"])
        speedup = scn["wall_s"] / idx["wall_s"]
        report.line(
            f"  {row['workload']:<22} {row['n_ranks']:>6} "
            f"{idx['match_probes']:>11} {scn['match_probes']:>12} "
            f"{probe_ratio:>6.1f}x {idx['wall_s']:>8.2f}s "
            f"{scn['wall_s']:>9.2f}s {speedup:>7.2f}x"
        )
    report.line()

    dense = [r for r in rows if r["workload"] == "dense exact reversed"]
    headline = max(dense, key=lambda r: r["n_ranks"])
    h_idx, h_scn = headline["index"], headline["scan"]
    probe_ratio = h_scn["match_probes"] / max(1, h_idx["match_probes"])
    speedup = h_scn["wall_s"] / h_idx["wall_s"]
    report.measured(
        f"dense exact @ {headline['n_ranks']} ranks: {probe_ratio:.0f}x "
        f"fewer probes, {speedup:.2f}x wall speedup, identical clocks"
    )
    parity = [r for r in rows
              if r["workload"] in ("alltoall 8B/peer", "dl_sgd ring 2x1MiB")]
    worst = min(r["scan"]["wall_s"] / r["index"]["wall_s"] for r in parity)
    report.measured(
        f"short-queue workloads (alltoall, dl_sgd): worst index-vs-scan "
        f"wall ratio {worst:.2f}x — indexing never loses"
    )
    report.measured(
        f"pooled reuses @ {headline['n_ranks']} ranks: "
        f"{h_idx['pooled_reuses']} requests/messages recycled"
    )
    report.finish()

    MATCHING_JSON.write_text(json.dumps({
        "description": "indexed match queues vs the linear-scan oracle: "
                       "per-match probe counts (entries examined per "
                       "matching attempt) and end-to-end wall time, at "
                       "identical simulated clocks",
        "mode": "full" if full else "smoke",
        "dense_rounds": DENSE_ROUNDS,
        "rows": rows,
    }, indent=2) + "\n", encoding="utf-8")

    wall_gate = WALL_GATE_FULL if full else WALL_GATE_SMOKE
    assert probe_ratio >= PROBE_GATE, (
        f"expected >={PROBE_GATE}x fewer probes at {headline['n_ranks']} "
        f"ranks, got {probe_ratio:.1f}x"
    )
    assert speedup >= wall_gate, (
        f"expected >={wall_gate}x wall speedup at {headline['n_ranks']} "
        f"ranks, got {speedup:.2f}x"
    )
    # indexing must not tank the short-queue workloads
    assert worst >= 0.8, f"index overhead on short queues: {worst:.2f}x"


def test_ablation_matching(once):
    report_and_gate(once(experiment))


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--smoke", action="store_true",
                       help="CI gate: smallest point only")
    group.add_argument("--full", action="store_true",
                       help="committed 256-2048 rank curve")
    args = parser.parse_args(argv)
    full = args.full or (not args.smoke
                         and bool(os.environ.get("REPRO_BENCH_FULL")))
    report_and_gate(experiment(full))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
