"""Benchmark-suite configuration.

The benches are pytest-benchmark tests; each runs its experiment exactly
once (``rounds=1``) because a run is an entire simulation campaign, not a
micro-kernel.  Use ``pytest benchmarks/ --benchmark-only`` to execute them
all; each prints its figure report and persists it under
``benchmarks/results/``.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))


@pytest.fixture
def once(benchmark):
    """Run the experiment exactly once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return runner
