"""Fig. 15 — NAS DT benchmark, WH and BH variants, classes A and B:
SMPI vs OpenMPI execution times.

Paper numbers: average error 8.11 %, worst 23.5 % (class A BH); the trend
that matters — **BH takes more time than WH** — must hold with strong
confidence in both the reference and the simulation.  The paper could
only run real experiments up to 43 nodes (class B); the same bound
applies here to the packet-level reference, while SMPI (next figure)
scales beyond it.
"""

from __future__ import annotations

import numpy as np

from _helpers import SEED, FigureReport, griffon_calibration, smpi_run
from repro.calibration.calibrate import replay_config
from repro.metrics import compare_series
from repro.nas import dt_app, dt_graph
from repro.platforms import griffon
from repro.refcluster import OPENMPI, run_reference

CONFIGS = [("WH", "A"), ("BH", "A"), ("WH", "B"), ("BH", "B")]


def experiment():
    models = griffon_calibration()
    cfg = replay_config(OPENMPI.config())
    rows = []
    for scheme, cls in CONFIGS:
        graph = dt_graph(scheme, cls)
        ref = run_reference(
            dt_app, graph.n_ranks, griffon(graph.n_ranks),
            app_args=(graph,), seed=SEED,
        )
        smpi = smpi_run(dt_app, graph.n_ranks, griffon(graph.n_ranks),
                        models.piecewise, app_args=(graph,), config=cfg)
        rows.append(
            (f"{scheme}-{cls}", graph.n_ranks,
             ref.simulated_time, smpi.simulated_time)
        )
    return rows


def test_fig15(once):
    rows = once(experiment)
    report = FigureReport("fig15", "NAS DT (WH/BH, classes A/B): SMPI vs OpenMPI")
    report.line(f"  {'variant':>8} {'procs':>6} {'OpenMPI':>12} {'SMPI':>12}")
    for name, procs, ref_t, smpi_t in rows:
        report.line(f"  {name:>8} {procs:>6} {ref_t:>11.3f}s {smpi_t:>11.3f}s")
    labels = [r[0] for r in rows]
    reference = [r[2] for r in rows]
    simulated = [r[3] for r in rows]
    comparison = compare_series("DT", np.arange(len(rows)), simulated, reference)
    report.line()
    report.paper("avg error 8.11 %, worst 23.5 % (class A BH); BH > WH")
    report.measured(comparison.row() + f"  (order: {labels})")
    by_name = {r[0]: r for r in rows}
    for cls in ("A", "B"):
        ref_ratio = by_name[f"BH-{cls}"][2] / by_name[f"WH-{cls}"][2]
        smpi_ratio = by_name[f"BH-{cls}"][3] / by_name[f"WH-{cls}"][3]
        report.measured(
            f"class {cls}: BH/WH ratio — OpenMPI {ref_ratio:.2f}x, "
            f"SMPI {smpi_ratio:.2f}x"
        )
    report.finish()

    assert comparison.mean_error_pct < 20.0
    for cls in ("A", "B"):
        assert by_name[f"BH-{cls}"][2] > by_name[f"WH-{cls}"][2], "reference BH > WH"
        assert by_name[f"BH-{cls}"][3] > by_name[f"WH-{cls}"][3], "SMPI BH > WH"
