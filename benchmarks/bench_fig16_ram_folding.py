"""Fig. 16 — memory consumption of DT with and without RAM folding.

Runs every DT configuration (WH/BH/SH × classes A/B/C) under SMPI twice —
with per-rank allocations and with ``SMPI_SHARED_MALLOC`` folding — and
reports the simulated peak footprint.  A host-memory budget is enforced
so that configurations that do not fit show up as "OM" (out of memory),
like the paper's unfolded class B/C runs.  The SH class C run uses 448
simulated processes, well beyond the 43 real nodes the paper could get.

Paper numbers: folding cuts memory 11.9x on average, up to 40.5x (WH
class B).  (The paper reports per-process RSS of separate OS processes;
our simulator accounts the simulated heap directly — see DESIGN.md.)
"""

from __future__ import annotations

import numpy as np

from _helpers import FigureReport, griffon_calibration, smpi_run
from repro.calibration.calibrate import replay_config
from repro.errors import ActorFailure, OutOfMemoryError
from repro.nas import dt_app, dt_graph
from repro.platforms import griffon
from repro.refcluster import OPENMPI
from repro.units import format_size

CONFIGS = [
    (scheme, cls) for cls in ("A", "B", "C") for scheme in ("WH", "BH", "SH")
]

#: single-node budget enforced on the simulated heap (scaled to our
#: scaled-down DT payloads, playing the role of the paper's RAM limit)
BUDGET = 512 * 1024 * 1024


def run_one(graph, folded: bool):
    models = griffon_calibration()
    cfg = replay_config(OPENMPI.config()).with_options(
        enforce_memory_limit=True, memory_limit=BUDGET
    )
    try:
        result = smpi_run(
            dt_app, graph.n_ranks, griffon(min(graph.n_ranks, 92)),
            models.piecewise, app_args=(graph, 0, folded), config=cfg,
        )
        return result.memory.total_peak
    except ActorFailure as failure:
        if isinstance(failure.original, OutOfMemoryError):
            return None  # the paper's "OM" marker
        raise


def experiment():
    rows = []
    for scheme, cls in CONFIGS:
        graph = dt_graph(scheme, cls)
        unfolded = run_one(graph, folded=False)
        folded = run_one(graph, folded=True)
        rows.append((f"{scheme}-{cls}", graph.n_ranks, unfolded, folded))
    return rows


def test_fig16(once):
    rows = once(experiment)
    report = FigureReport(
        "fig16", "DT memory footprint with and without RAM folding"
    )
    report.line(
        f"  {'variant':>8} {'procs':>6} {'unfolded':>12} {'folded':>12} {'ratio':>8}"
    )
    ratios = []
    om_count = 0
    for name, procs, unfolded, folded in rows:
        if unfolded is None:
            om_count += 1
            unf_s = "OM"
        else:
            unf_s = format_size(unfolded)
        fol_s = "OM" if folded is None else format_size(folded)
        if unfolded and folded:
            ratios.append(unfolded / folded)
            ratio_s = f"{unfolded / folded:7.1f}x"
        else:
            ratio_s = "      —"
        report.line(f"  {name:>8} {procs:>6} {unf_s:>12} {fol_s:>12} {ratio_s}")
    report.line()
    report.paper("folding reduces memory 11.9x on average, up to 40.5x "
                 "(WH class B); several unfolded runs go OM")
    if ratios:
        report.measured(
            f"avg reduction {np.mean(ratios):.1f}x, max {np.max(ratios):.1f}x; "
            f"{om_count} unfolded configuration(s) OM under a "
            f"{format_size(BUDGET)} budget"
        )
    report.finish()

    folded_ok = [r for r in rows if r[3] is not None]
    assert len(folded_ok) == len(rows), "every folded run must fit"
    assert om_count >= 1, "some unfolded run should exceed the budget"
    assert np.mean(ratios) > 3.0
    assert np.max(ratios) > 10.0
