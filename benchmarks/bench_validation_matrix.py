"""Cross-validation matrix: flow model vs packet-level testbed.

The paper's modelling methodology rests on flow-level simulation having
been validated against packet-level simulation (GTNetS, refs [25, 26]).
This bench performs the equivalent study for our stack: a matrix of
communication patterns × message sizes is executed on BOTH kernels with
identical application code, and the calibrated flow model's times are
scored against the packet testbed's.

This goes beyond any single paper figure: it quantifies, in one table,
where the analytical approximation is trustworthy (large transfers,
structured collectives) and where it drifts (latency-dominated swarms).
"""

from __future__ import annotations

import numpy as np

from _helpers import SEED, FigureReport, griffon_calibration, smpi_run
from repro.calibration.calibrate import replay_config
from repro.metrics import compare_series
from repro.platforms import griffon
from repro.refcluster import OPENMPI, run_reference

N_PROCS = 8
SIZES = [1024, 65_536, 1_048_576]


def pattern_ring(mpi, nbytes):
    comm = mpi.COMM_WORLD
    buf = np.zeros(nbytes, dtype=np.uint8)
    incoming = np.zeros(nbytes, dtype=np.uint8)
    comm.Barrier()
    start = mpi.wtime()
    for _ in range(3):
        comm.Sendrecv(buf, (mpi.rank + 1) % mpi.size, 0,
                      incoming, (mpi.rank - 1) % mpi.size, 0)
    return mpi.wtime() - start


def pattern_bcast(mpi, nbytes):
    comm = mpi.COMM_WORLD
    buf = np.zeros(nbytes, dtype=np.uint8)
    comm.Barrier()
    start = mpi.wtime()
    comm.Bcast(buf, root=0)
    comm.Barrier()
    return mpi.wtime() - start


def pattern_allreduce(mpi, nbytes):
    comm = mpi.COMM_WORLD
    send = np.zeros(nbytes // 8)
    recv = np.zeros(nbytes // 8)
    comm.Barrier()
    start = mpi.wtime()
    comm.Allreduce(send, recv)
    comm.Barrier()
    return mpi.wtime() - start


def pattern_gather(mpi, nbytes):
    comm = mpi.COMM_WORLD
    send = np.zeros(nbytes, dtype=np.uint8)
    recv = np.zeros(nbytes * mpi.size, dtype=np.uint8) if mpi.rank == 0 else None
    comm.Barrier()
    start = mpi.wtime()
    comm.Gather(send, recv, root=0)
    comm.Barrier()
    return mpi.wtime() - start


def pattern_master_worker(mpi, nbytes):
    comm = mpi.COMM_WORLD
    comm.Barrier()
    start = mpi.wtime()
    if mpi.rank == 0:
        for worker in range(1, mpi.size):
            comm.Send(np.zeros(nbytes, dtype=np.uint8), worker, 1)
        for worker in range(1, mpi.size):
            comm.Recv(np.zeros(nbytes, dtype=np.uint8), worker, 2)
    else:
        comm.Recv(np.zeros(nbytes, dtype=np.uint8), 0, 1)
        mpi.execute(1e6)
        comm.Send(np.zeros(nbytes, dtype=np.uint8), 0, 2)
    return mpi.wtime() - start


PATTERNS = {
    "ring": pattern_ring,
    "bcast": pattern_bcast,
    "allreduce": pattern_allreduce,
    "gather": pattern_gather,
    "master-worker": pattern_master_worker,
}


def experiment():
    models = griffon_calibration()
    cfg = replay_config(OPENMPI.config())
    matrix = {}
    for name, app in PATTERNS.items():
        for nbytes in SIZES:
            ref = run_reference(
                app, N_PROCS, griffon(N_PROCS), app_args=(nbytes,), seed=SEED,
            )
            smpi = smpi_run(app, N_PROCS, griffon(N_PROCS), models.piecewise,
                            app_args=(nbytes,), config=cfg)
            matrix[(name, nbytes)] = (max(ref.returns), max(smpi.returns))
    return matrix


def test_validation_matrix(once):
    matrix = once(experiment)
    report = FigureReport(
        "validation_matrix",
        "flow model vs packet testbed across patterns x sizes",
    )
    report.line(
        f"  {'pattern':>14} {'bytes':>9} {'packet-level':>13} "
        f"{'flow model':>12} {'err%':>7}"
    )
    errors = []
    for (name, nbytes), (ref, smpi) in sorted(matrix.items()):
        err = abs(np.log(smpi) - np.log(ref))
        err_pct = (np.exp(err) - 1) * 100
        errors.append(err)
        report.line(
            f"  {name:>14} {nbytes:>9} {ref * 1e3:>11.3f}ms "
            f"{smpi * 1e3:>10.3f}ms {err_pct:>6.1f}"
        )
    mean_pct = (np.exp(np.mean(errors)) - 1) * 100
    worst_pct = (np.exp(np.max(errors)) - 1) * 100
    report.line()
    report.measured(
        f"over {len(matrix)} pattern/size cells: avg {mean_pct:.2f}%, "
        f"worst {worst_pct:.2f}%"
    )
    # per-size aggregation: does accuracy improve with message size?
    for nbytes in SIZES:
        cell_errors = [
            abs(np.log(smpi) - np.log(ref))
            for (name, nb), (ref, smpi) in matrix.items()
            if nb == nbytes
        ]
        pct = (np.exp(np.mean(cell_errors)) - 1) * 100
        report.measured(f"size {nbytes:>8}: avg {pct:.2f}%")
    report.finish()

    assert mean_pct < 15.0, "flow model should track the packet testbed"
    # large messages are the analytical model's home turf
    large_errors = [
        abs(np.log(s) - np.log(r))
        for (name, nb), (r, s) in matrix.items()
        if nb == SIZES[-1]
    ]
    assert (np.exp(np.mean(large_errors)) - 1) * 100 < 10.0
