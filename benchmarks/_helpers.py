"""Shared infrastructure for the figure-reproduction benchmarks.

Every benchmark regenerates one figure of the paper's evaluation
(section 7): it runs the experiment, prints the same rows/series the
paper reports next to the paper's own numbers, and appends a summary to
``benchmarks/results/`` so EXPERIMENTS.md can be kept in sync.

Absolute numbers are not expected to match (the substrate is a packet
simulator, not Grid'5000); the *shape* — who wins, by what factor, where
the crossovers are — is what each bench asserts loosely and reports.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from repro.calibration import CalibratedModels, calibrate_all
from repro.calibration.calibrate import replay_config
from repro.platforms import griffon
from repro.refcluster import OPENMPI, run_pingpong_campaign
from repro.smpi import SmpiConfig, smpirun
from repro.surf import Platform
from repro.surf.network_model import ConstantNetworkModel, NetworkModel

RESULTS_DIR = Path(__file__).parent / "results"

#: seed used by every reference-measurement campaign in the benches
SEED = 42


class FigureReport:
    """Collects printable lines and persists them under results/."""

    def __init__(self, figure: str, title: str):
        self.figure = figure
        self.title = title
        self._buf = io.StringIO()
        self.line("=" * 72)
        self.line(f"{figure}: {title}")
        self.line("=" * 72)

    def line(self, text: str = "") -> None:
        self._buf.write(text + "\n")

    def paper(self, text: str) -> None:
        self.line(f"  [paper]    {text}")

    def measured(self, text: str) -> None:
        self.line(f"  [measured] {text}")

    def finish(self) -> str:
        text = self._buf.getvalue()
        print("\n" + text)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{self.figure}.txt").write_text(text, encoding="utf-8")
        return text


_calibration_cache: dict[str, CalibratedModels] = {}


def griffon_calibration(seed: int = SEED) -> CalibratedModels:
    """The griffon ping-pong calibration shared by Figs. 3-5 (cached)."""
    key = f"griffon-{seed}"
    if key not in _calibration_cache:
        platform = griffon(4)
        campaign = run_pingpong_campaign(
            platform, "griffon-0", "griffon-1", OPENMPI, seed=seed
        )
        _calibration_cache[key] = calibrate_all(
            campaign.sizes, campaign.times, campaign.route
        )
    return _calibration_cache[key]


def smpi_run(
    app,
    n_ranks: int,
    platform: Platform,
    model: NetworkModel,
    app_args: tuple = (),
    hosts: list[str] | None = None,
    config: SmpiConfig | None = None,
):
    """An SMPI run with a calibrated model and the matching replay config."""
    return smpirun(
        app,
        n_ranks,
        platform,
        app_args=app_args,
        hosts=hosts,
        config=config or replay_config(OPENMPI.config()),
        network_model=model,
    )


def no_contention_model() -> NetworkModel:
    """The strawman of Figs. 7/11: nominal bandwidth, no sharing."""
    return ConstantNetworkModel()


def fmt_series(xs, ys, x_name="x", y_scale=1.0, y_unit="s") -> str:
    rows = [f"    {x_name:>12}  {'value':>12}"]
    for x, y in zip(xs, ys):
        rows.append(f"    {x:>12g}  {y * y_scale:>12.4g} {y_unit}")
    return "\n".join(rows)


def scatter_app(mpi, chunk_bytes: int):
    """Binomial-tree scatter of ``chunk_bytes`` per rank; every rank
    returns its completion time relative to the synchronised start."""
    comm = mpi.COMM_WORLD
    elems = chunk_bytes  # uint8
    recv = np.zeros(elems, dtype=np.uint8)
    send = None
    if mpi.rank == 0:
        send = np.zeros(mpi.size * elems, dtype=np.uint8)
    comm.Barrier()
    start = mpi.wtime()
    comm.Scatter(send, recv, root=0)
    return mpi.wtime() - start


def alltoall_app(mpi, chunk_bytes: int):
    """Pairwise all-to-all with ``chunk_bytes`` per peer; returns the
    per-rank completion time."""
    comm = mpi.COMM_WORLD
    elems = chunk_bytes
    send = np.zeros(mpi.size * elems, dtype=np.uint8)
    recv = np.zeros(mpi.size * elems, dtype=np.uint8)
    comm.Barrier()
    start = mpi.wtime()
    comm.Alltoall(send, recv)
    return mpi.wtime() - start


FORCE_BINOMIAL = {"scatter": "binomial"}
FORCE_PAIRWISE = {"alltoall": "pairwise"}
