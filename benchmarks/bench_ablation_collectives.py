"""Ablation — collective algorithm variants (the paper's announced future
work, section 5.3: "Future versions will provide multiple variants,
letting users choose which ones to use in the simulation").

For each collective with several implementations, runs every variant on
the same workload and reports the *simulated* completion times, showing
why implementations select per message size: the winner changes between
the small- and large-message regimes.
"""

from __future__ import annotations

import numpy as np

from _helpers import FigureReport, griffon_calibration, smpi_run
from repro.calibration.calibrate import replay_config
from repro.platforms import griffon
from repro.refcluster import OPENMPI
from repro.smpi.coll import ALGORITHMS

N_PROCS = 16
SMALL = 1024
LARGE = 1024 * 1024


def bcast_app(mpi, elems):
    buf = np.zeros(elems, dtype=np.uint8)
    mpi.COMM_WORLD.Barrier()
    start = mpi.wtime()
    mpi.COMM_WORLD.Bcast(buf, root=0)
    mpi.COMM_WORLD.Barrier()
    return mpi.wtime() - start


def allgather_app(mpi, elems):
    send = np.zeros(elems, dtype=np.uint8)
    recv = np.zeros(mpi.size * elems, dtype=np.uint8)
    mpi.COMM_WORLD.Barrier()
    start = mpi.wtime()
    mpi.COMM_WORLD.Allgather(send, recv)
    mpi.COMM_WORLD.Barrier()
    return mpi.wtime() - start


def alltoall_app(mpi, elems):
    send = np.zeros(mpi.size * elems, dtype=np.uint8)
    recv = np.zeros(mpi.size * elems, dtype=np.uint8)
    mpi.COMM_WORLD.Barrier()
    start = mpi.wtime()
    mpi.COMM_WORLD.Alltoall(send, recv)
    mpi.COMM_WORLD.Barrier()
    return mpi.wtime() - start


def allreduce_app(mpi, elems):
    send = np.zeros(elems)
    recv = np.zeros(elems)
    mpi.COMM_WORLD.Barrier()
    start = mpi.wtime()
    mpi.COMM_WORLD.Allreduce(send, recv)
    mpi.COMM_WORLD.Barrier()
    return mpi.wtime() - start


APPS = {
    "bcast": bcast_app,
    "allgather": allgather_app,
    "alltoall": alltoall_app,
    "allreduce": allreduce_app,
}


def experiment():
    models = griffon_calibration()
    table: dict[str, dict[str, dict[int, float]]] = {}
    for collective, app in APPS.items():
        table[collective] = {}
        for algo in sorted(ALGORITHMS[collective]):
            if collective == "allreduce" and algo == "recursive_doubling":
                pass  # fine for 16 procs (power of two)
            table[collective][algo] = {}
            for elems in (SMALL, LARGE):
                cfg = replay_config(
                    OPENMPI.config(coll_algorithms={collective: algo})
                )
                result = smpi_run(
                    app, N_PROCS, griffon(N_PROCS), models.piecewise,
                    app_args=(elems,), config=cfg,
                )
                table[collective][algo][elems] = max(result.returns)
    return table


def test_ablation_collectives(once):
    table = once(experiment)
    report = FigureReport(
        "ablation_collectives",
        "collective algorithm variants: simulated times (16 procs)",
    )
    for collective, algos in table.items():
        report.line(f"  {collective}:")
        for algo, times in algos.items():
            report.line(
                f"    {algo:<22} {SMALL:>7} B: {times[SMALL] * 1e3:>9.3f} ms"
                f"   {LARGE:>8} B: {times[LARGE] * 1e3:>10.3f} ms"
            )
        small_best = min(algos, key=lambda a: algos[a][SMALL])
        large_best = min(algos, key=lambda a: algos[a][LARGE])
        report.measured(
            f"{collective}: best at {SMALL} B = {small_best}, "
            f"best at {LARGE} B = {large_best}"
        )
        report.line()
    report.finish()

    # the motivating fact for per-size selection: for at least one
    # collective the winner differs between the two regimes
    different = sum(
        1
        for algos in table.values()
        if min(algos, key=lambda a: algos[a][SMALL])
        != min(algos, key=lambda a: algos[a][LARGE])
    )
    assert different >= 1
    # sanity: every variant of a collective produced a positive time
    for algos in table.values():
        for times in algos.values():
            assert all(t > 0 for t in times.values())
