"""Ablation — how sensitive are the conclusions to the testbed's knobs?

Our reference testbed substitutes for the paper's real clusters, so its
parameters (TCP window, slow-start, measurement noise) deserve the same
scrutiny the paper gives its models.  This bench re-runs the Fig. 3
calibration story under perturbed testbed parameters and checks the
*conclusions* — model ordering, boundary placement near 64 KiB — survive
every perturbation.  If a conclusion only held for one magic parameter
set, this bench would expose it.
"""

from __future__ import annotations

import numpy as np

from _helpers import SEED, FigureReport
from repro.calibration import calibrate_all
from repro.metrics import compare_series
from repro.packetsim import PacketEngine, PacketParams
from repro.platforms import griffon
from repro.refcluster import OPENMPI
from repro.refcluster.skampi import _pingpong_app, default_sizes
from repro.smpi import smpirun

VARIANTS = {
    "baseline": PacketParams(noise=0.02, seed=SEED),
    "no-noise": PacketParams(noise=0.0, seed=SEED),
    "heavy-noise": PacketParams(noise=0.08, seed=SEED),
    "small-window": PacketParams(noise=0.02, seed=SEED,
                                 window_bytes=256 * 1024),
    "huge-window": PacketParams(noise=0.02, seed=SEED,
                                window_bytes=4 * 1024 * 1024),
}


def run_campaign(params: PacketParams):
    sizes = default_sizes()
    platform = griffon(2)
    engine = PacketEngine(platform, params)
    result = smpirun(
        _pingpong_app, 2, platform, app_args=(sizes, 3),
        config=OPENMPI.config(), engine=engine,
    )
    measured = result.returns[0]
    times = np.asarray([measured[s] for s in sizes], dtype=float)
    return np.asarray(sizes, dtype=float), times, platform.route(
        "griffon-0", "griffon-1"
    ).params


def experiment():
    rows = {}
    for label, params in VARIANTS.items():
        sizes, times, route = run_campaign(params)
        models = calibrate_all(sizes, times, route)
        comparisons = {
            name: compare_series(
                name, sizes, models.predict(name, sizes), times
            )
            for name in ("piecewise", "default_affine", "best_fit_affine")
        }
        boundary = models.piecewise.segments[-1].lo
        rows[label] = (comparisons, boundary)
    return rows


def test_ablation_testbed(once):
    rows = once(experiment)
    report = FigureReport(
        "ablation_testbed",
        "Fig. 3 conclusions under perturbed testbed parameters",
    )
    for label, (comparisons, boundary) in rows.items():
        pw = comparisons["piecewise"].mean_error_pct
        da = comparisons["default_affine"].mean_error_pct
        bf = comparisons["best_fit_affine"].mean_error_pct
        report.measured(
            f"{label:<13} pw {pw:5.2f}%  best-fit {bf:5.2f}%  "
            f"default {da:5.2f}%  last boundary at {boundary / 1024:.0f} KiB"
        )
    report.line()
    report.measured("conclusion check: piecewise wins in every variant and "
                    "the top segment boundary stays inside the eager->"
                    "rendezvous transition region")
    report.finish()

    for label, (comparisons, boundary) in rows.items():
        pw = comparisons["piecewise"].mean_error_pct
        da = comparisons["default_affine"].mean_error_pct
        bf = comparisons["best_fit_affine"].mean_error_pct
        assert pw < bf <= da + 1e-9, f"ordering broke under {label}"
        # the fitted boundary stays in the eager->rendezvous transition
        # region (the exact cut moves a little with noise, as expected)
        assert 8 * 1024 <= boundary <= 256 * 1024, (
            f"boundary drifted under {label}: {boundary}"
        )
