"""Sweep-engine ablation: process-pool fan-out + content-hash memoization.

The acceptance claim of the sweep subsystem (ROADMAP item 1): a 3-axis
campaign (>= 12 points) completes on a process pool, and an *immediate
re-run* is served entirely from the ``.repro-cache`` memo store — no
simulation at all — at >= 10x the cold wall time.  This is the
"thousands of runs" workflow of Cornebize & Legrand (PAPERS.md): edit
one axis, pay only for the new points.

Committed results: ``benchmarks/results/sweep_memoization.json``.
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path

from _helpers import RESULTS_DIR, FigureReport
from repro.sweep import ResultCache, SweepSpec, result_rows, run_sweep

MEMO_JSON = RESULTS_DIR / "sweep_memoization.json"

#: 1 platform x 1 workload x (2 x 2 x 3) axes = 12 points
SPEC = {
    "name": "bench-memoization",
    "platforms": [{"spec": "cluster:8:125MBps:50us"}],
    "workloads": [{"builtin": "allreduce", "n": 8,
                   "params": {"size": 262144, "reps": 4}}],
    "axes": {
        "eager_threshold": [4096, 65536],
        "wire_efficiency": [1.0, 0.85],
        "coll.allreduce": ["recursive_doubling", "reduce_bcast",
                           "rabenseifner"],
    },
}


def experiment():
    """Cold sweep on a process pool, then a warm (all-hits) re-run."""
    with tempfile.TemporaryDirectory(prefix="repro-sweep-bench") as root:
        spec = SweepSpec.from_dict(SPEC, base_dir=root)
        cache = ResultCache(Path(root) / "cache")

        start = time.perf_counter()
        cold = run_sweep(spec, jobs=4, cache=cache)
        cold_wall = time.perf_counter() - start

        start = time.perf_counter()
        warm = run_sweep(spec, jobs=4, cache=cache)
        warm_wall = time.perf_counter() - start

        # a single-axis edit re-simulates only the touched points
        edited_data = json.loads(json.dumps(SPEC))
        edited_data["axes"]["wire_efficiency"] = [1.0, 0.7]
        edited = SweepSpec.from_dict(edited_data, base_dir=root)
        delta = run_sweep(edited, jobs=4, cache=cache)

        rows = result_rows(warm)
    return {
        "points": len(cold.points),
        "cold": cold, "cold_wall": cold_wall,
        "warm": warm, "warm_wall": warm_wall,
        "delta": delta, "rows": rows,
    }


def test_sweep_memoization(once):
    data = once(experiment)
    cold, warm, delta = data["cold"], data["warm"], data["delta"]
    n = data["points"]
    speedup = data["cold_wall"] / data["warm_wall"]

    report = FigureReport(
        "sweep_memoization",
        "batched sweep engine: pool fan-out + memo-cache re-run",
    )
    report.line(f"  3-axis grid, {n} points, allreduce/n8, 4 workers")
    report.measured(
        f"cold run : {data['cold_wall'] * 1e3:8.1f} ms "
        f"({cold.misses} simulated, {cold.workers} workers)")
    report.measured(
        f"warm run : {data['warm_wall'] * 1e3:8.1f} ms "
        f"({warm.hits}/{n} cache hits)")
    report.measured(f"speedup  : {speedup:8.1f}x warm over cold")
    report.measured(
        f"1-axis edit: {delta.misses} points re-simulated, "
        f"{delta.hits} reused")
    sim_times = sorted({f"{r['simulated_time']:.6f}" for r in data["rows"]})
    report.line(f"  distinct simulated times across the grid: "
                f"{len(sim_times)}")
    report.finish()

    MEMO_JSON.write_text(json.dumps({
        "points": n,
        "cold_wall_s": round(data["cold_wall"], 4),
        "warm_wall_s": round(data["warm_wall"], 4),
        "speedup": round(speedup, 1),
        "cold_workers": cold.workers,
        "warm_hits": warm.hits,
        "edit_resimulated": delta.misses,
        "edit_reused": delta.hits,
    }, indent=1) + "\n", encoding="utf-8")

    assert n >= 12
    assert cold.workers > 1, "cold run must fan out over a process pool"
    assert not cold.errors
    assert warm.hits == n, "re-run must be served entirely from cache"
    assert speedup >= 10, (
        f"warm re-run only {speedup:.1f}x faster than cold")
    # the single-axis edit only pays for the points it touched
    assert delta.hits == n // 2 and delta.misses == n // 2
