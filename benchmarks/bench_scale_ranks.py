"""Scale curve: ranks vs peak RSS and wall time on the HPL skeleton.

The paper's single-node claim, measured: simulate the HPL communication
skeleton at growing rank counts (1k → 16k) in one process per point and
record the *process* peak RSS (``ru_maxrss``) next to the wall time and
the simulator's own memory accounting.  Each point runs in a fresh
subprocess because ``ru_maxrss`` is monotone over a process lifetime —
measuring three points in one process would report the largest for all.

The constant-memory scale path is what makes the curve flat-ish:

* the workload's panel is a folded ``shared_malloc`` block (one panel
  total, not one per rank);
* payloads, datatype signatures and request metadata are interned;
* per-rank state is a coroutine continuation, not an OS thread.

The gate asserted here (and smoke-checked in CI with smaller counts):
quadrupling the ranks from 4k to 16k must at most double the peak RSS —
i.e. the per-rank marginal cost is bounded by bookkeeping, not by the
application's working set.

Run the full curve::

    python -m pytest benchmarks/bench_scale_ranks.py --benchmark-only

or one point by hand (prints a JSON record)::

    python benchmarks/bench_scale_ranks.py --child 4096
"""

from __future__ import annotations

import json
import os
import resource
import subprocess
import sys
import time
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"
SCALE_JSON = RESULTS_DIR / "scale_ranks.json"
SRC_DIR = Path(__file__).parent.parent / "src"

#: rank counts of the committed curve
FULL_POINTS = [1024, 4096, 16384]
#: rank counts of the CI smoke gate (seconds, not minutes)
SMOKE_POINTS = [256, 1024]

#: HPL skeleton shape: 4 panel steps of 256x256 blocks
HPL_PARAMS = {"n": 1024, "nb": 256}

#: ranks-quadrupled RSS growth bound (the constant-memory gate)
RSS_GROWTH_BOUND = 2.0


def _child_main(n_ranks: int) -> None:
    """One measured point: run, then print the record as JSON."""
    from repro.smpi import smpirun
    from repro.surf import cluster
    from repro.sweep.workloads import resolve

    app = resolve("hpl", HPL_PARAMS)
    platform = cluster("scale", min(n_ranks, 256))
    start = time.perf_counter()
    result = smpirun(app, n_ranks, platform, ctx="coroutine")
    wall = time.perf_counter() - start
    rss_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    memory = result.memory
    print(json.dumps({
        "n_ranks": n_ranks,
        "simulated_s": result.simulated_time,
        "wall_s": wall,
        "peak_rss_bytes": rss_kib * 1024,
        "sim_total_peak": memory.total_peak,
        "sim_shared_peak": memory.shared_peak,
        "intern_naive_peak": memory.intern_naive_peak,
        "intern_stored_peak": memory.intern_stored_peak,
    }))


def run_point(n_ranks: int) -> dict:
    """Run one rank count in a fresh subprocess; parse its JSON record."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, __file__, "--child", str(n_ranks)],
        capture_output=True, text=True, env=env, check=True,
    )
    # the record is the last stdout line (warnings may precede it)
    return json.loads(proc.stdout.strip().splitlines()[-1])


def experiment(points: list[int]) -> list[dict]:
    return [run_point(n) for n in points]


def _report(rows: list[dict], label: str) -> None:
    print(f"\nscale_ranks ({label}): HPL skeleton, "
          f"n={HPL_PARAMS['n']} nb={HPL_PARAMS['nb']}")
    print(f"  {'ranks':>7} {'peak RSS':>12} {'wall':>9} {'simulated':>11} "
          f"{'folded heap':>12}")
    for row in rows:
        print(f"  {row['n_ranks']:>7} "
              f"{row['peak_rss_bytes'] / 2**20:>10.1f}Mi "
              f"{row['wall_s']:>8.1f}s "
              f"{row['simulated_s']:>10.3f}s "
              f"{row['sim_shared_peak'] / 2**20:>10.1f}Mi")


def _assert_constant_memory(rows: list[dict]) -> None:
    """Quadrupling ranks must at most double peak RSS (sublinear)."""
    for prev, cur in zip(rows, rows[1:]):
        rank_factor = cur["n_ranks"] / prev["n_ranks"]
        rss_factor = cur["peak_rss_bytes"] / prev["peak_rss_bytes"]
        assert rss_factor <= RSS_GROWTH_BOUND, (
            f"{prev['n_ranks']} -> {cur['n_ranks']} ranks "
            f"({rank_factor:.0f}x) grew peak RSS {rss_factor:.2f}x "
            f"(bound {RSS_GROWTH_BOUND}x)"
        )


def test_scale_ranks(once):
    rows = once(experiment, FULL_POINTS)
    _report(rows, "full")
    RESULTS_DIR.mkdir(exist_ok=True)
    SCALE_JSON.write_text(json.dumps({
        "description": ("peak process RSS and wall time vs simulated rank "
                        "count for the builtin hpl skeleton workload; one "
                        "fresh subprocess per point (ru_maxrss is "
                        "process-monotone)"),
        "hpl_params": HPL_PARAMS,
        "rss_growth_bound_per_4x_ranks": RSS_GROWTH_BOUND,
        "rows": rows,
    }, indent=1, sort_keys=True), encoding="utf-8")
    _assert_constant_memory(rows)


def smoke() -> None:
    """The CI gate: small counts, same sublinearity assertion."""
    rows = experiment(SMOKE_POINTS)
    _report(rows, "smoke")
    _assert_constant_memory(rows)
    print("scale smoke gate passed")


if __name__ == "__main__":
    if len(sys.argv) == 3 and sys.argv[1] == "--child":
        sys.path.insert(0, str(SRC_DIR))
        _child_main(int(sys.argv[2]))
    elif len(sys.argv) == 2 and sys.argv[1] == "--smoke":
        smoke()
    else:
        sys.exit(f"usage: {sys.argv[0]} --child N_RANKS | --smoke")
