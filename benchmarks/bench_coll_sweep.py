"""Collective size-sweep: the ring/rabenseifner/two-level crossover.

The paper's section 5.3 future work promises *multiple collective
variants, letting users choose which ones to use*; the DL workload
family (ROADMAP item 3) is why the choice matters — a data-parallel
step is one allreduce per gradient bucket, and the best algorithm flips
with the message size.  This bench drives ``repro coll sweep``'s
engine over griffon and gdx at 64 ranks and records where the winner
changes: latency-bound small messages favour the hierarchical
two-level scheme (one uplink crossing instead of log P), while
bandwidth-bound large messages favour ring / Rabenseifner (2x the
payload on the wire instead of log P copies).

Committed results: ``benchmarks/results/coll_sweep.json`` — the
size-vs-algorithm table that ``docs/collectives.md`` walks through.
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path

from _helpers import RESULTS_DIR, FigureReport
from repro.sweep import (
    ResultCache,
    best_algorithms,
    coll_rows,
    coll_sweep_spec,
    crossovers,
    run_sweep,
    size_ladder,
)

COLL_JSON = RESULTS_DIR / "coll_sweep.json"

PLATFORMS = ("griffon", "gdx")
N_PROCS = 64          # spans all 3 griffon cabinets / 4 gdx switch groups
SIZES = size_ladder("4KiB", "2MiB", 8)
ALGOS = ("recursive_doubling", "ring", "rabenseifner", "two_level")


def experiment():
    """Size x algorithm allreduce sweeps on both paper platforms."""
    out = {}
    with tempfile.TemporaryDirectory(prefix="repro-coll-bench") as root:
        for platform in PLATFORMS:
            spec = coll_sweep_spec(
                collective="allreduce", sizes=SIZES, nprocs=[N_PROCS],
                algos=list(ALGOS), platform=platform, iters=2)
            cache = ResultCache(Path(root) / platform)

            start = time.perf_counter()
            cold = run_sweep(spec, jobs=4, cache=cache)
            wall = time.perf_counter() - start
            warm = run_sweep(spec, jobs=4, cache=cache)

            rows = coll_rows(cold)
            out[platform] = {
                "wall": wall,
                "errors": list(cold.errors),
                "warm_hits": warm.hits,
                "points": len(cold.points),
                "rows": rows,
                "best": best_algorithms(rows),
                "crossovers": crossovers(rows),
            }
    return out


def test_coll_sweep_crossover(once):
    data = once(experiment)

    report = FigureReport(
        "coll_sweep",
        "allreduce size sweep: the algorithm-crossover table",
    )
    all_crossovers = []
    for platform in PLATFORMS:
        d = data[platform]
        assert not d["errors"], d["errors"]
        assert d["warm_hits"] == d["points"], "re-run must hit the memo cache"
        report.line(f"  {platform}, {N_PROCS} ranks, "
                    f"{d['points']} points in {d['wall']:.1f} s "
                    f"(warm re-run {d['warm_hits']}/{d['points']} hits)")
        for b in d["best"]:
            report.measured(
                f"{platform:<8} {b['size']:>9} B  best={b['best']:<20} "
                f"{b['latency'] * 1e3:9.3f} ms  (runner-up x{b['margin']:.2f})")
        for c in d["crossovers"]:
            all_crossovers.append(c)
            report.line(
                f"  crossover: {c['below_best']} -> {c['above_best']} "
                f"between {c['below_size']} and {c['above_size']} bytes")
        report.line()
    report.finish()

    COLL_JSON.write_text(json.dumps({
        platform: {
            "n": N_PROCS,
            "sizes": SIZES,
            "algos": list(ALGOS),
            "rows": [
                {k: (round(v, 6) if isinstance(v, float) else v)
                 for k, v in row.items()}
                for row in data[platform]["rows"]
            ],
            "best": [
                {k: (round(v, 6) if isinstance(v, float) else v)
                 for k, v in b.items()}
                for b in data[platform]["best"]
            ],
            "crossovers": data[platform]["crossovers"],
        }
        for platform in PLATFORMS
    }, indent=1) + "\n", encoding="utf-8")

    # the acceptance claim: at least one algorithm-crossover point, i.e.
    # no single algorithm dominates the whole size range
    assert all_crossovers, "expected the best algorithm to flip with size"
    for platform in PLATFORMS:
        best = data[platform]["best"]
        assert best[0]["best"] != best[-1]["best"], (
            platform, [b["best"] for b in best])
        # large messages are bandwidth-bound: a reduce-scatter based
        # algorithm (ring / rabenseifner) must win the top size
        assert best[-1]["best"] in ("ring", "rabenseifner"), best[-1]
