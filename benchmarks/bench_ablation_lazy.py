"""Ablation — lazy action updates and the completion-date heap.

The engine's event loop is event-driven: each pending action carries an
absolute predicted deadline, kept in a min-heap, and is only touched when
its rate actually changes.  This bench drives the same Fig. 17-style
workload — a crossbar of concurrently-draining disjoint transfers, every
one completing at a distinct date — through the lazy engine and the
historical ``eager_updates=True`` scan-everything loop, at growing flow
counts.  Identical simulated clocks are asserted (the heap is a pure
optimisation); the counters show the per-event work dropping from O(P)
to O(1) and the wall-clock following.
"""

from __future__ import annotations

import time

from _helpers import FigureReport
from repro.surf import Engine, cluster

FLOW_COUNTS = (128, 512, 2048)


def pairwise_stage(platform, n_flows: int, eager: bool):
    """One ring stage of disjoint split-duplex transfers, distinct sizes.

    Every flow is its own max-min component and finishes at its own date,
    so the run has exactly ``n_flows`` completion events — the worst case
    for a loop that scans all pending actions at each one.
    """
    engine = Engine(platform, eager_updates=eager)
    for i in range(n_flows):
        engine.communicate(
            f"node-{i}", f"node-{(i + 1) % n_flows}", 1e6 * (1 + i)
        )
    start = time.perf_counter()
    final = engine.run()
    wall = time.perf_counter() - start
    return final, wall, engine.stats


def experiment():
    rows = []
    for n_flows in FLOW_COUNTS:
        # building a 2048-node platform dwarfs the runs; share one
        # (engines keep all their state engine-local)
        platform = cluster(
            "lazyab", n_flows, backbone_bandwidth=None, split_duplex=True
        )
        t_lazy, w_lazy, s_lazy = pairwise_stage(platform, n_flows, eager=False)
        t_eager, w_eager, s_eager = pairwise_stage(platform, n_flows, eager=True)
        assert t_lazy == t_eager, (
            f"lazy updates changed the simulation at {n_flows} flows: "
            f"{t_lazy} != {t_eager}"
        )
        rows.append((n_flows, w_lazy, s_lazy, w_eager, s_eager))
    return rows


def test_ablation_lazy(once):
    rows = once(experiment)
    report = FigureReport(
        "ablation_lazy", "lazy action updates vs eager per-event scans"
    )
    report.line(f"  {'flows':>6} {'mode':>6} {'wall':>9} {'events/s':>10} "
                f"{'touch/event':>12} {'heap pops':>10} {'stale':>7}")
    for n_flows, w_lazy, s_lazy, w_eager, s_eager in rows:
        for mode, wall, stats in (("lazy", w_lazy, s_lazy),
                                  ("eager", w_eager, s_eager)):
            report.line(
                f"  {n_flows:>6} {mode:>6} {wall * 1e3:>7.1f}ms "
                f"{stats.steps / wall:>10.0f} "
                f"{stats.actions_touched / stats.steps:>12.1f} "
                f"{stats.heap_pops:>10} {stats.stale_heap_entries:>7}"
            )
    n_big, w_lazy, s_lazy, w_eager, s_eager = rows[-1]
    touch_ratio = (s_eager.actions_touched / s_eager.steps) / (
        s_lazy.actions_touched / s_lazy.steps
    )
    report.line()
    report.measured(
        f"at {n_big} flows the heap does {touch_ratio:.0f}x fewer per-event "
        f"action updates and runs {w_eager / w_lazy:.1f}x faster wall-clock, "
        "at bit-identical simulated times"
    )
    report.finish()

    assert touch_ratio >= 5.0, (
        f"expected >=5x fewer per-event action updates at {n_big} flows, "
        f"got {touch_ratio:.1f}x"
    )
    assert w_lazy < w_eager, (
        f"lazy engine should be faster at {n_big} flows: "
        f"{w_lazy:.3f}s vs {w_eager:.3f}s"
    )
