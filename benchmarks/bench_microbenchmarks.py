"""Simulator micro-benchmarks: the costs behind the speed claims.

The paper's speed results (section 7.3) rest on the kernel being cheap:
one analytical solve per scheduling point, thread hand-offs at MPI-call
granularity.  These benches measure the primitive costs on this machine —
the numbers that determine how large a simulation fits in a coffee break —
and are tracked by pytest-benchmark like any regression suite.
"""

from __future__ import annotations

import numpy as np

from _helpers import FigureReport
from repro.smpi import smpirun
from repro.surf import Engine, cluster
from repro.surf.network_model import FactorsNetworkModel


def test_engine_transfer_throughput(benchmark):
    """Sequential point-to-point transfers through the analytical kernel."""

    def run_transfers():
        engine = Engine(cluster("mb1", 2),
                        network_model=FactorsNetworkModel(1.0, 1.0))
        for _ in range(200):
            engine.communicate("node-0", "node-1", 1000)
            engine.run()
        return engine.stats.actions_completed

    completed = benchmark(run_transfers)
    assert completed == 200


def test_engine_concurrent_share_cost(benchmark):
    """One max-min solve over 64 concurrent flows on a shared backbone."""

    def run_concurrent():
        engine = Engine(cluster("mb2", 128),
                        network_model=FactorsNetworkModel(1.0, 1.0))
        for i in range(64):
            engine.communicate(f"node-{2 * i}", f"node-{2 * i + 1}", 10_000)
        engine.run()
        return engine.stats.actions_completed

    assert benchmark(run_concurrent) == 64


def test_mpi_message_rate(benchmark):
    """Full-stack simulated message rate: protocol + scheduler + kernel."""

    def app(mpi):
        comm = mpi.COMM_WORLD
        buf = np.zeros(8, dtype=np.uint8)
        for i in range(100):
            if mpi.rank == 0:
                comm.Send(buf, 1, 0)
            else:
                comm.Recv(buf, 0, 0)
        return mpi.wtime()

    def run_app():
        return smpirun(app, 2, cluster("mb3", 2)).stats.actions_completed

    completed = benchmark(run_app)
    assert completed >= 100


def test_actor_context_switch_cost(benchmark):
    """Baton hand-off rate: ranks alternating via zero-compute barriers."""

    def app(mpi):
        for _ in range(50):
            mpi.COMM_WORLD.Barrier()

    def run_app():
        smpirun(app, 4, cluster("mb4", 4))
        return True

    assert benchmark(run_app)


def test_report(once):
    """Persist a summary so results/ carries the machine's profile."""
    import time

    def measure():
        out = {}
        engine = Engine(cluster("mbr", 2),
                        network_model=FactorsNetworkModel(1.0, 1.0))
        start = time.perf_counter()
        for _ in range(500):
            engine.communicate("node-0", "node-1", 1000)
            engine.run()
        out["kernel transfers/s"] = 500 / (time.perf_counter() - start)

        def app(mpi):
            buf = np.zeros(8, dtype=np.uint8)
            comm = mpi.COMM_WORLD
            for _ in range(200):
                if mpi.rank == 0:
                    comm.Send(buf, 1, 0)
                else:
                    comm.Recv(buf, 0, 0)

        start = time.perf_counter()
        smpirun(app, 2, cluster("mbr2", 2))
        out["full-stack messages/s"] = 200 / (time.perf_counter() - start)
        return out

    numbers = once(measure)
    report = FigureReport("microbenchmarks", "simulator primitive costs")
    for key, value in numbers.items():
        report.measured(f"{key}: {value:,.0f}")
    report.finish()
    assert numbers["kernel transfers/s"] > 1000
    assert numbers["full-stack messages/s"] > 200
