"""Fig. 3 — ping-pong on the calibration cluster (griffon).

Reproduces the accuracy comparison between SKaMPI measurements and the
three SMPI models (default affine / best-fit affine / piece-wise linear)
on the cluster the piece-wise model was calibrated on.

Paper numbers: piece-wise 8.63 % avg (worst 27 %), default affine 32.1 %
(worst 127 %), best-fit affine 18.5 % (worst 62.6 %).  Expected shape:
piece-wise clearly best; both affine models fail on medium messages; the
worst piece-wise error sits at the 64 KiB segment boundary.
"""

from __future__ import annotations

import numpy as np

from _helpers import SEED, FigureReport, griffon_calibration
from repro.metrics import compare_series
from repro.platforms import griffon
from repro.refcluster import OPENMPI, run_pingpong_campaign

MODELS = ("piecewise", "default_affine", "best_fit_affine")
PAPER = {
    "piecewise": (8.63, 27.0),
    "default_affine": (32.1, 127.0),
    "best_fit_affine": (18.5, 62.6),
}


def experiment():
    models = griffon_calibration()
    # an independent measurement run (fresh noise) plays the SKaMPI curve
    campaign = run_pingpong_campaign(
        griffon(4), "griffon-0", "griffon-1", OPENMPI, seed=SEED + 1
    )
    comparisons = {}
    for name in MODELS:
        predicted = models.predict(name, campaign.sizes)
        comparisons[name] = compare_series(
            name, campaign.sizes, predicted, campaign.times
        )
    return campaign, comparisons


def test_fig03(once):
    campaign, comparisons = once(experiment)
    report = FigureReport(
        "fig03", "ping-pong accuracy on the calibration cluster (griffon)"
    )
    report.line(campaign.table())
    report.line()
    for name in MODELS:
        paper_avg, paper_worst = PAPER[name]
        report.paper(f"{name:<18} avg {paper_avg:6.2f}%   worst {paper_worst:7.2f}%")
        report.measured(comparisons[name].row())
    report.finish()

    pw, da, bf = (comparisons[m] for m in MODELS)
    # the paper's qualitative claims
    assert pw.mean_error_pct < bf.mean_error_pct <= da.mean_error_pct + 1e-9, (
        "piece-wise must beat best-fit affine, which must beat default affine"
    )
    assert pw.mean_error_pct < 10.0
    assert da.mean_error_pct > 2.0 * pw.mean_error_pct
    # worst piece-wise error at/near the eager->rendezvous boundary (64 KiB)
    assert 16_384 <= pw.max_error_at <= 262_144
