"""Fig. 11 — per-process times of a pairwise all-to-all, 16 procs, 4 MiB.

The maximum-contention experiment: at every step the network carries a
perfect matching of 16 simultaneous 4 MiB transfers.  Paper numbers: the
no-contention model underestimates consistently by ~78 % (log error) on
every rank; SMPI with contention lands within ~1 % of OpenMPI.
"""

from __future__ import annotations

import numpy as np

from _helpers import (
    FORCE_PAIRWISE,
    SEED,
    FigureReport,
    alltoall_app,
    griffon_calibration,
    no_contention_model,
    smpi_run,
)
from repro.calibration.calibrate import replay_config
from repro.metrics import log_error_series, mean_percent_error
from repro.platforms import griffon
from repro.refcluster import OPENMPI, run_reference
from repro.smpi.coll import pairwise_schedule

N_PROCS = 16
CHUNK = 4 * 1024 * 1024


def experiment():
    results = {}
    ref = run_reference(
        alltoall_app, N_PROCS, griffon(N_PROCS), app_args=(CHUNK,), seed=SEED,
        config_overrides={"coll_algorithms": FORCE_PAIRWISE},
    )
    results["OpenMPI"] = np.asarray(ref.returns)

    models = griffon_calibration()
    cfg = replay_config(OPENMPI.config(coll_algorithms=FORCE_PAIRWISE))
    smpi = smpi_run(alltoall_app, N_PROCS, griffon(N_PROCS), models.piecewise,
                    app_args=(CHUNK,), config=cfg)
    results["SMPI"] = np.asarray(smpi.returns)

    nocont = smpi_run(alltoall_app, N_PROCS, griffon(N_PROCS),
                      no_contention_model(), app_args=(CHUNK,), config=cfg)
    results["SMPI-nocontention"] = np.asarray(nocont.returns)
    return results


def test_fig11(once):
    results = once(experiment)
    report = FigureReport(
        "fig11", "per-process pairwise all-to-all times, 16 procs x 4 MiB"
    )
    report.line("Fig. 10 schedule (4 procs): "
                + " | ".join(
                    ",".join(f"{s}->{d}" for s, d in step)
                    for step in pairwise_schedule(4)))
    report.line()
    report.line(f"  {'rank':>4} " + "".join(f"{k:>20}" for k in results))
    for rank in range(N_PROCS):
        report.line(
            f"  {rank:>4} "
            + "".join(f"{results[k][rank]:>19.4f}s" for k in results)
        )
    err_cont = mean_percent_error(results["SMPI"], results["OpenMPI"])
    nocont_logerr = log_error_series(
        results["SMPI-nocontention"], results["OpenMPI"]
    )
    nocont_pct = (np.exp(nocont_logerr.mean()) - 1) * 100
    report.line()
    report.paper("no-contention model errs ~78 % consistently; SMPI <1 %")
    report.measured(
        f"SMPI-with-contention avg err {err_cont:.2f}%  |  "
        f"no-contention avg err {nocont_pct:.2f}% "
        f"(spread {nocont_logerr.std() * 100:.1f}% log-points)"
    )
    report.finish()

    assert err_cont < 12.0
    assert nocont_pct > 40.0, "ignoring contention must be badly optimistic"
    assert (results["SMPI-nocontention"] < results["OpenMPI"]).all()
    # the no-contention error is consistent across ranks (paper)
    assert nocont_logerr.std() < 0.15
