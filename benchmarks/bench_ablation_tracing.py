"""Ablation — cost of the observability layer.

The acceptance bar for tracing (docs/tracing.md §7) is asymmetric:

* **off** (the default): zero overhead.  The tracer hooks are never
  called and the engine's sampling branch is never entered, so the
  simulation runs the identical code path as before the layer existed.
* **on**: cheap.  Utilization sampling piggybacks on the incremental
  solver's dirty-component re-solves, so only resources whose share
  actually changed are visited.

This bench runs the same contention-heavy workload (pairwise all-to-all
plus staggered compute) in both modes, asserts the simulated clock is
bit-identical, and reports wall-time and sample-count deltas.
"""

from __future__ import annotations

import time

import numpy as np

from _helpers import FigureReport
from repro.smpi import SmpiConfig, smpirun
from repro.surf import cluster
from repro.trace import makespan

N_RANKS = 16
PAYLOAD = 256 << 10
REPEATS = 3


def traffic_app(mpi):
    comm = mpi.COMM_WORLD
    mpi.execute(1e7 * (1 + mpi.rank % 4))
    objs = [b"x" * PAYLOAD for _ in range(mpi.size)]
    comm.alltoall(objs)
    mpi.execute(5e6)
    comm.barrier()


def run_once(tracing: bool):
    platform = cluster("trace-bench", N_RANKS)
    start = time.perf_counter()
    result = smpirun(traffic_app, N_RANKS, platform,
                     config=SmpiConfig(tracing=tracing))
    wall = time.perf_counter() - start
    return result, wall


def experiment():
    rows = []
    for tracing in (False, True):
        best = None
        for _ in range(REPEATS):
            result, wall = run_once(tracing)
            if best is None or wall < best[1]:
                best = (result, wall)
        rows.append((tracing, *best))
    return rows


def test_ablation_tracing(once):
    rows = once(experiment)
    (_, off_result, off_wall), (_, on_result, on_wall) = rows

    # the model is untouched: identical simulated clock either way
    assert on_result.simulated_time == off_result.simulated_time

    # off really is off: no records, no timeline, no samples
    assert off_result.trace.timeline is None
    assert not off_result.trace.comms and not off_result.trace.computes
    assert off_result.stats.link_samples == 0

    # on really observes: records, per-resource samples, closed intervals
    trace = on_result.trace
    assert trace.comms and trace.computes and trace.timeline is not None
    assert not trace.open_records()
    assert makespan(trace) == on_result.simulated_time
    assert on_result.stats.link_samples == trace.timeline.n_samples

    overhead = on_wall / off_wall - 1.0
    report = FigureReport(
        "ablation_tracing", "observability layer on/off overhead"
    )
    report.line(f"  {'tracing':>8} {'wall':>10} {'simulated':>11} "
                f"{'samples':>8} {'records':>8}")
    for tracing, result, wall in rows:
        samples = result.stats.link_samples
        records = len(result.trace.comms) + len(result.trace.computes)
        report.line(f"  {str(tracing).lower():>8} {wall * 1e3:>8.1f}ms "
                    f"{result.simulated_time * 1e3:>9.2f}ms "
                    f"{samples:>8} {records:>8}")
    report.line()
    report.measured(
        f"tracing-on wall overhead {overhead * 100:+.1f}% "
        f"({trace.timeline.n_samples} samples over "
        f"{len(trace.timeline.names())} resources); simulated times "
        f"bit-identical"
    )
    report.finish()
