"""Fig. 7 — per-process completion times of a binomial-tree scatter,
16 processes, 4 MiB chunks (64 MiB root buffer), on griffon.

Four bars per process in the paper: SMPI with contention, SMPI without
contention, OpenMPI and MPICH2.  Expected shape: the no-contention model
*always underestimates*; SMPI-with-contention tracks both real
implementations, whose mutual gap (≈5.3 % average) bounds the error that
matters.  Also prints the Fig. 6 communication scheme.
"""

from __future__ import annotations

import numpy as np

from _helpers import (
    FORCE_BINOMIAL,
    SEED,
    FigureReport,
    griffon_calibration,
    no_contention_model,
    scatter_app,
    smpi_run,
)
from repro.calibration.calibrate import replay_config
from repro.metrics import mean_percent_error
from repro.platforms import griffon
from repro.refcluster import MPICH2, OPENMPI, run_reference
from repro.smpi.coll import binomial_tree_edges

N_PROCS = 16
CHUNK = 4 * 1024 * 1024


def experiment():
    platform = griffon(N_PROCS)
    hosts = platform.host_names()

    results = {}
    for label, implementation in (("OpenMPI", OPENMPI), ("MPICH2", MPICH2)):
        ref = run_reference(
            scatter_app, N_PROCS, griffon(N_PROCS),
            implementation=implementation, app_args=(CHUNK,), seed=SEED,
            config_overrides={"coll_algorithms": FORCE_BINOMIAL},
        )
        results[label] = np.asarray(ref.returns)

    models = griffon_calibration()
    cfg = replay_config(OPENMPI.config(coll_algorithms=FORCE_BINOMIAL))
    smpi = smpi_run(scatter_app, N_PROCS, griffon(N_PROCS), models.piecewise,
                    app_args=(CHUNK,), config=cfg)
    results["SMPI"] = np.asarray(smpi.returns)

    nocont = smpi_run(scatter_app, N_PROCS, griffon(N_PROCS),
                      no_contention_model(), app_args=(CHUNK,), config=cfg)
    results["SMPI-nocontention"] = np.asarray(nocont.returns)
    del hosts
    return results


def test_fig07(once):
    results = once(experiment)
    report = FigureReport(
        "fig07",
        "per-process binomial scatter times, 16 procs x 4 MiB chunks",
    )
    report.line("Fig. 6 scheme (parent -> child: #chunks):")
    report.line(
        "  " + ", ".join(f"{s}->{d}:{c}" for s, d, c in binomial_tree_edges(16))
    )
    report.line()
    header = f"  {'rank':>4} " + "".join(f"{k:>20}" for k in results)
    report.line(header)
    for rank in range(N_PROCS):
        report.line(
            f"  {rank:>4} "
            + "".join(f"{results[k][rank]:>19.4f}s" for k in results)
        )
    gap_impl = mean_percent_error(results["OpenMPI"][1:], results["MPICH2"][1:])
    gap_smpi = mean_percent_error(results["SMPI"][1:], results["MPICH2"][1:])
    report.line()
    report.paper("SMPI-vs-MPICH2 gap ~ OpenMPI-vs-MPICH2 gap (≈5.3 % avg; "
                 "worst 17.6 % / 20.2 %)")
    report.measured(f"OpenMPI vs MPICH2 avg gap {gap_impl:.2f}%  |  "
                    f"SMPI vs MPICH2 avg gap {gap_smpi:.2f}%")
    underest = (
        results["SMPI-nocontention"][1:] <= results["OpenMPI"][1:] + 1e-9
    ).mean()
    report.paper("the no-contention model always underestimates")
    report.measured(f"no-contention model underestimates OpenMPI on "
                    f"{underest * 100:.0f}% of ranks")
    report.finish()

    # shape assertions
    assert underest >= 0.9
    assert gap_smpi < 4 * max(gap_impl, 5.0)
    # contention model must be much closer to reality than no-contention
    err_cont = mean_percent_error(results["SMPI"][1:], results["OpenMPI"][1:])
    err_nocont = mean_percent_error(
        results["SMPI-nocontention"][1:], results["OpenMPI"][1:]
    )
    assert err_cont < err_nocont
