"""Fig. 4 — ping-pong on gdx (1 switch) with the *griffon* calibration.

Demonstrates calibration transfer: the piece-wise model fitted on griffon
predicts a different cluster (gdx, same-switch node pair) without
re-calibration, because the model stores latency/bandwidth *correction
factors* relative to the physical route, not absolute values.

Paper numbers: piece-wise 7.88 % avg (worst 59.1 %), default affine
28.1 % (worst 89.6 %), best-fit affine 16.4 % (worst 63.8 %).
"""

from __future__ import annotations

import numpy as np

from _helpers import SEED, FigureReport, griffon_calibration
from repro.metrics import compare_series
from repro.platforms import gdx, gdx_same_switch_pair
from repro.refcluster import OPENMPI, run_pingpong_campaign

MODELS = ("piecewise", "default_affine", "best_fit_affine")
PAPER = {
    "piecewise": (7.88, 59.1),
    "default_affine": (28.1, 89.6),
    "best_fit_affine": (16.4, 63.8),
}


def experiment():
    models = griffon_calibration()  # calibrated on griffon, NOT gdx
    platform = gdx(40)
    node_a, node_b = gdx_same_switch_pair()
    campaign = run_pingpong_campaign(
        platform, node_a, node_b, OPENMPI, seed=SEED + 2
    )
    gdx_route = campaign.route
    comparisons = {}
    for name in MODELS:
        model = {
            "piecewise": models.piecewise,
            "default_affine": models.default_affine,
            "best_fit_affine": models.best_fit_affine,
        }[name]
        predicted = np.asarray(
            [model.predict_time(float(s), gdx_route) for s in campaign.sizes]
        )
        comparisons[name] = compare_series(
            name, campaign.sizes, predicted, campaign.times
        )
    return campaign, comparisons


def test_fig04(once):
    campaign, comparisons = once(experiment)
    report = FigureReport(
        "fig04", "ping-pong on gdx (1 switch) using the griffon calibration"
    )
    for name in MODELS:
        paper_avg, paper_worst = PAPER[name]
        report.paper(f"{name:<18} avg {paper_avg:6.2f}%   worst {paper_worst:7.2f}%")
        report.measured(comparisons[name].row())
    report.finish()

    pw, da, bf = (comparisons[m] for m in MODELS)
    # cross-cluster transfer still leaves piece-wise clearly ahead
    assert pw.mean_error_pct < bf.mean_error_pct <= da.mean_error_pct + 1e-9
    assert pw.mean_error_pct < 12.0
