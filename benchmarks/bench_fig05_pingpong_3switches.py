"""Fig. 5 — ping-pong between distant gdx cabinets (3 switches on the path),
still using the griffon calibration.

The hierarchical route (access → cabinet switch → core switch → cabinet
switch → access) has higher latency and crosses the 1 GbE uplinks; the
model factors must scale onto it correctly.

Paper numbers: piece-wise 9.94 % avg (worst 92.2 %); the text also notes
that the best model at 64 KiB errs by 46 ms at 4 MiB while the piece-wise
model stays within ~1.6 ms there.
"""

from __future__ import annotations

import numpy as np

from _helpers import SEED, FigureReport, griffon_calibration
from repro.metrics import compare_series
from repro.platforms import gdx
from repro.refcluster import OPENMPI, run_pingpong_campaign

MODELS = ("piecewise", "default_affine", "best_fit_affine")
PAPER_PW = (9.94, 92.2)


def experiment():
    models = griffon_calibration()
    platform = gdx()  # full platform: distant cabinets exist
    node_a, node_b = "gdx-0", "gdx-300"
    assert len(platform.route(node_a, node_b).links) == 7  # 3 switches
    campaign = run_pingpong_campaign(
        platform, node_a, node_b, OPENMPI, seed=SEED + 3
    )
    comparisons = {}
    for name in MODELS:
        model = getattr(models, name if name != "piecewise" else "piecewise")
        model = {
            "piecewise": models.piecewise,
            "default_affine": models.default_affine,
            "best_fit_affine": models.best_fit_affine,
        }[name]
        predicted = np.asarray(
            [model.predict_time(float(s), campaign.route) for s in campaign.sizes]
        )
        comparisons[name] = compare_series(
            name, campaign.sizes, predicted, campaign.times
        )
    # the 4 MiB head-to-head the paper narrates
    four_mib = 4 * 1024 * 1024
    idx = int(np.argmin(np.abs(campaign.sizes - four_mib)))
    at_4mib = {
        name: abs(float(cmp.measured[idx]) - float(cmp.reference[idx]))
        for name, cmp in comparisons.items()
    }
    return campaign, comparisons, at_4mib


def test_fig05(once):
    campaign, comparisons, at_4mib = once(experiment)
    report = FigureReport(
        "fig05", "ping-pong across 3 switches on gdx (griffon calibration)"
    )
    report.paper(
        f"piecewise          avg {PAPER_PW[0]:6.2f}%   worst {PAPER_PW[1]:7.2f}%"
    )
    for name in MODELS:
        report.measured(comparisons[name].row())
    report.line()
    report.paper("at 4 MiB: best-fit affine errs by 46 ms, piece-wise by 1.6 ms")
    report.measured(
        "at ~4 MiB: "
        + ", ".join(f"{n} {v * 1e3:.2f} ms" for n, v in at_4mib.items())
    )
    report.finish()

    pw = comparisons["piecewise"]
    assert pw.mean_error_pct < 15.0
    # the piece-wise model stays the most accurate overall on this much
    # harder route (the 4 MiB head-to-head is reported above; with our
    # testbed all models are within a millisecond there)
    assert pw.mean_error_pct < comparisons["best_fit_affine"].mean_error_pct
    assert pw.mean_error_pct < comparisons["default_affine"].mean_error_pct
