#!/usr/bin/env python
"""A 1-D heat-equation stencil with the SMPI scalability macros
(paper sections 3.1/3.2 and Fig. 18's mechanism).

Each rank owns a slab of the rod, exchanges halo cells with its
neighbours every iteration, and sweeps the stencil.  Three configurations
of the same code demonstrate the single-node scalability features:

* full execution (every sweep computed);
* CPU sampling (``sample_local``): only the first 10 % of sweeps are
  executed and timed, the rest replay the measured average — simulation
  wall time drops, simulated time barely moves;
* RAM folding (``shared_malloc``): all ranks share one slab allocation —
  footprint collapses (and results become approximate, as the paper
  documents).

    python examples/stencil_sampling.py
"""

from __future__ import annotations

import numpy as np

from repro.smpi import smpirun
from repro.surf import cluster
from repro.units import format_size, format_time

N_RANKS = 8
SLAB = 400_000  # cells per rank
ITERATIONS = 60


def stencil_app(mpi, sampling_ratio: float = 1.0, folded: bool = False):
    comm = mpi.COMM_WORLD
    rank, size = mpi.rank, mpi.size
    left, right = rank - 1, rank + 1

    if folded:
        u = mpi.shared_malloc("stencil-slab", SLAB + 2)
    else:
        u = mpi.malloc(SLAB + 2)
    u[:] = 0.0
    if rank == 0:
        u[0] = 100.0  # boundary condition: hot left end

    halo = np.empty(1)
    n_samples = max(1, int(round(sampling_ratio * ITERATIONS)))
    for _ in range(ITERATIONS):
        # halo exchange (PROC_NULL at the rod's ends)
        from repro.smpi import PROC_NULL

        lnbr = left if left >= 0 else PROC_NULL
        rnbr = right if right < size else PROC_NULL
        comm.Sendrecv(u[1:2].copy(), lnbr, 1, halo, rnbr, 1)
        if rnbr != PROC_NULL:
            u[-1] = halo[0]
        comm.Sendrecv(u[-2:-1].copy(), rnbr, 2, halo, lnbr, 2)
        if lnbr != PROC_NULL:
            u[0] = halo[0]

        # the CPU burst: executed only while the sample site is warming up
        for _ in mpi.sample_local("stencil-sweep", n=n_samples):
            u[1:-1] = u[1:-1] + 0.25 * (u[:-2] - 2.0 * u[1:-1] + u[2:])

    local_energy = float(np.sum(u[1:-1]))
    total = np.empty(1)
    comm.Allreduce(np.array([local_energy]), total)
    if folded:
        mpi.shared_free("stencil-slab")
    else:
        mpi.free(u)
    return float(total[0]) if rank == 0 else None


def run(label: str, sampling_ratio: float = 1.0, folded: bool = False) -> None:
    result = smpirun(
        stencil_app, N_RANKS, cluster(f"stencil-{label}", N_RANKS),
        app_args=(sampling_ratio, folded),
    )
    print(f"  {label:<22} simulated {format_time(result.simulated_time):>10}   "
          f"wall {format_time(result.wall_time):>10}   "
          f"footprint {format_size(result.memory.total_peak):>10}   "
          f"energy {result.returns[0]:.2f}")


def main() -> None:
    print(f"1-D heat stencil, {N_RANKS} ranks x {SLAB} cells, "
          f"{ITERATIONS} iterations:")
    run("full execution")
    run("10% CPU sampling", sampling_ratio=0.1)
    run("RAM folding", folded=True)
    print("\nsampling cuts the simulation's wall time, not the simulated time;"
          "\nfolding cuts the footprint (and, as documented, exactness).")


if __name__ == "__main__":
    main()
