#!/usr/bin/env python
"""Capacity planning with "what if?" simulations (paper section 1).

A lab is buying a cluster for an all-to-all-heavy workload (e.g. parallel
FFT transposes) and must choose between candidate configurations at
similar cost:

  A. 32 nodes, Gigabit Ethernet access, 10G backbone
  B. 32 nodes, Gigabit access, *20G* backbone  (pricier switch)
  C. 16 nodes, *10G* access links, 40G backbone (fewer, better-connected)

We simulate the same application on all three *hypothetical* platforms —
no hardware required — and report the decision, including where the
crossover between B and C lies as the transpose size grows.

    python examples/whatif_capacity_planning.py
"""

from __future__ import annotations

import numpy as np

from repro.smpi import smpirun
from repro.surf import cluster
from repro.units import format_time


def transpose_workload(mpi, total_elems: int, total_flops: float, rounds: int):
    """The kernel of a distributed FFT under *strong scaling*: a fixed
    global problem (``total_elems`` data, ``total_flops`` compute per
    round) split over however many nodes the candidate platform has."""
    comm = mpi.COMM_WORLD
    size = mpi.size
    elems_per_peer = max(total_elems // (size * size), 1)
    send = np.arange(size * elems_per_peer, dtype=np.float64) + mpi.rank
    recv = np.empty(size * elems_per_peer)
    for _ in range(rounds):
        comm.Alltoall(send, recv)
        mpi.execute(flops=total_flops / size)  # local FFT stage
        send, recv = recv, send
    comm.Barrier()
    return mpi.wtime() if mpi.rank == 0 else None


def candidate_platforms() -> dict[str, tuple]:
    return {
        "A: 32n GigE + 10G bb": (
            cluster("candA", 32, host_speed="10Gf",
                    link_bandwidth="125MBps", backbone_bandwidth="1.25GBps"),
            32,
        ),
        "B: 32n GigE + 20G bb": (
            cluster("candB", 32, host_speed="10Gf",
                    link_bandwidth="125MBps", backbone_bandwidth="2.5GBps"),
            32,
        ),
        "C: 16n 10GigE + 40G bb": (
            cluster("candC", 16, host_speed="10Gf",
                    link_bandwidth="1.25GBps", backbone_bandwidth="5GBps"),
            16,
        ),
    }


def main() -> None:
    rounds = 4
    total_flops = 4e9  # fixed compute per transpose round, whole machine
    print(f"{'global data':>12} | " + " | ".join(
        f"{name:<24}" for name in candidate_platforms()))
    crossover = None
    previous_winner = None
    for total_mb in (1, 4, 16, 64, 256):
        total_elems = total_mb * 1024 * 1024 // 8
        times = {}
        for name, (platform, n_ranks) in candidate_platforms().items():
            result = smpirun(
                transpose_workload, n_ranks, platform,
                app_args=(total_elems, total_flops, rounds),
            )
            times[name] = result.returns[0]
        winner = min(times, key=times.get)
        if previous_winner and winner != previous_winner and crossover is None:
            crossover = total_mb
        previous_winner = winner
        row = " | ".join(
            f"{format_time(t):>12} {'<-- best' if name == winner else '        '}"
            for name, t in times.items()
        )
        print(f"{total_mb:>10}MB | {row}")
    if crossover is not None:
        print(f"\ncrossover: the winning configuration changes around "
              f"{crossover} MB of global data — the purchase decision depends "
              "on the expected workload, and simulation quantifies it.")
    print("\nAll of this ran on one machine; no candidate cluster exists.")


if __name__ == "__main__":
    main()
