#!/usr/bin/env python
"""The full calibration workflow of paper section 6 + Fig. 3.

1. run a SKaMPI-style ping-pong campaign between two nodes of the
   (simulated) griffon cluster,
2. fit the piece-wise linear model (segment boundaries maximising the
   product of correlation coefficients) and both affine instantiations,
3. compare all three models' predictions against the measurements — the
   reproduction of Fig. 3's accuracy story,
4. save the calibrated platform as SimGrid-style XML for reuse.

    python examples/calibrate_and_compare.py
"""

from __future__ import annotations

from repro.calibration import calibrate_all
from repro.metrics import compare_series
from repro.platforms import griffon
from repro.refcluster import OPENMPI, run_pingpong_campaign
from repro.surf import save_platform_xml


def main() -> None:
    platform = griffon(4)
    print("running SKaMPI ping-pong campaign on simulated griffon ...")
    campaign = run_pingpong_campaign(
        platform, "griffon-0", "griffon-1", OPENMPI, seed=7
    )
    print(campaign.table())
    print()

    models = calibrate_all(campaign.sizes, campaign.times, campaign.route)
    print(models.piecewise.describe())
    print()

    print("model accuracy against the measurements (paper Fig. 3):")
    for name in ("piecewise", "default_affine", "best_fit_affine"):
        predicted = models.predict(name, campaign.sizes)
        comparison = compare_series(name, campaign.sizes, predicted,
                                    campaign.times)
        print("  " + comparison.row())

    out = "/tmp/griffon_calibrated.xml"
    save_platform_xml(griffon(8), out)
    print(f"\nplatform description exported to {out} (SimGrid-style XML)")


if __name__ == "__main__":
    main()
