#!/usr/bin/env python
"""Checkpoint/restart with simulated MPI-IO (the paper's section-8
extension, implemented here).

A distributed solver periodically writes its state to a shared file
(collective `Write_at_all`, one stripe per rank) and later restarts from
it.  The simulation answers the sizing question a real project would ask:
*how much wall-clock does checkpointing cost at this frequency on this
storage system?* — without owning the storage system.

    python examples/checkpoint_io.py
"""

from __future__ import annotations

import numpy as np

from repro.smpi import File, MODE_CREATE, MODE_RDONLY, MODE_RDWR, smpirun
from repro.surf import cluster
from repro.units import format_size, format_time

N_RANKS = 8
STATE = 250_000  # float64 per rank (~2 MB)
STEPS = 12
CHECKPOINT_EVERY = 4


def solver(mpi, checkpointing: bool):
    comm = mpi.COMM_WORLD
    state = np.full(STATE, float(mpi.rank))
    stripe = STATE * 8  # bytes per rank in the checkpoint file

    io_time = 0.0
    for step in range(1, STEPS + 1):
        # one solver step: local compute + halo-ish allreduce
        mpi.execute(flops=2e7)
        total = np.empty(1)
        comm.Allreduce(np.array([state.sum()]), total)
        state *= 0.999

        if checkpointing and step % CHECKPOINT_EVERY == 0:
            t0 = mpi.wtime()
            fh = File.Open(comm, "checkpoint.bin", MODE_CREATE | MODE_RDWR)
            fh.Write_at_all(mpi.rank * stripe, state)
            fh.Close()
            io_time += mpi.wtime() - t0

    return {"t": mpi.wtime(), "io": io_time, "sum": float(state.sum())}


def restart(mpi):
    comm = mpi.COMM_WORLD
    stripe = STATE * 8
    fh = File.Open(comm, "checkpoint.bin", MODE_RDONLY)
    state = np.zeros(STATE)
    fh.Read_at_all(mpi.rank * stripe, state)
    fh.Close()
    return float(state[0])


def main() -> None:
    platform = cluster("hpc", N_RANKS)
    plain = smpirun(solver, N_RANKS, platform, app_args=(False,))
    with_ckpt = smpirun(solver, N_RANKS, cluster("hpc2", N_RANKS),
                        app_args=(True,))

    t_plain = plain.returns[0]["t"]
    t_ckpt = with_ckpt.returns[0]["t"]
    io = with_ckpt.returns[0]["io"]
    print(f"{N_RANKS} ranks x {format_size(STATE * 8)} state, {STEPS} steps, "
          f"checkpoint every {CHECKPOINT_EVERY}:")
    print(f"  without checkpoints : {format_time(t_plain)}")
    print(f"  with checkpoints    : {format_time(t_ckpt)} "
          f"({(t_ckpt / t_plain - 1) * 100:.1f}% overhead, "
          f"{format_time(io)} in I/O)")

    def both(mpi):
        solver(mpi, True)
        return restart(mpi)

    restarted = smpirun(both, N_RANKS, cluster("hpc3", N_RANKS))
    print(f"  restart readback    : rank r sees its own stripe "
          f"(rank 3 -> {restarted.returns[3]:.3f}) "
          f"{'✓' if abs(restarted.returns[3] - 3 * 0.999**STEPS) < 1e-6 else '✗'}")


if __name__ == "__main__":
    main()
