#!/usr/bin/env python
"""On-line vs off-line simulation (paper section 2's dichotomy, live).

Records a time-independent trace from an on-line run of the NAS DT
benchmark, saves it to JSON (what a tracing tool would ship home from a
production cluster), then replays it:

1. on the recording platform — the replay reproduces the on-line
   simulated time *exactly* (a strong consistency check between the two
   simulation modes);
2. on hypothetical upgraded platforms — the off-line what-if study that
   trace-driven simulators are good at;
3. and shows the structural limitation the paper leads with: the trace is
   tied to the recorded application configuration, so changing the rank
   count needs a fresh (on-line) run.

    python examples/offline_replay.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.errors import ConfigError
from repro.nas import dt_app, dt_graph
from repro.offline import TiTrace, record_trace, replay_trace
from repro.platforms import griffon
from repro.surf import cluster
from repro.units import format_size, format_time


def main() -> None:
    graph = dt_graph("BH", "A")
    platform = griffon(graph.n_ranks)

    print(f"recording NAS DT {graph.scheme} class {graph.cls.name} "
          f"({graph.n_ranks} ranks) on simulated griffon ...")
    online, trace = record_trace(dt_app, graph.n_ranks, platform,
                                 app_args=(graph,))
    print(f"  on-line simulated time: {format_time(online.simulated_time)}")
    print(f"  {trace.summary()}")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "dt_bh_a.json"
        trace.save(path)
        print(f"  trace saved to {path.name} "
              f"({format_size(path.stat().st_size)})")
        trace = TiTrace.load(path)

    replayed = replay_trace(trace, griffon(graph.n_ranks))
    exact = abs(replayed.simulated_time - online.simulated_time) < 1e-9
    print(f"\nreplay on the same platform: "
          f"{format_time(replayed.simulated_time)} "
          f"{'(matches on-line exactly ✓)' if exact else '(MISMATCH ✗)'}")

    print("\nwhat-if replays on hypothetical upgrades:")
    for label, plat in [
        ("10 GigE access links",
         cluster("up1", graph.n_ranks, link_bandwidth="1.25GBps",
                 backbone_bandwidth="2.5GBps")),
        ("half-speed archive cluster",
         cluster("down", graph.n_ranks, link_bandwidth="62.5MBps",
                 backbone_bandwidth="125MBps")),
    ]:
        what_if = replay_trace(trace, plat)
        print(f"  {label:<28} {format_time(what_if.simulated_time)}")

    print("\nthe off-line limitation (paper §2):")
    try:
        replay_trace(trace, cluster("more", 42), n_ranks=42)
    except ConfigError as exc:
        print(f"  replay with a different rank count refused: {exc}")


if __name__ == "__main__":
    main()
