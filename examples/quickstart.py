#!/usr/bin/env python
"""Quickstart: simulate a small MPI application on a cluster you don't own.

Runs a classic SPMD pipeline — scatter a vector, compute locally, combine
with an allreduce, gather statistics — on 16 simulated nodes of a Gigabit
cluster, all inside this single process.  This is the paper's classroom
scenario: learning MPI without a parallel machine.

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.smpi import MIN, smpirun
from repro.surf import cluster
from repro.units import format_time


def app(mpi):
    # Written in the generator dialect (yield from comm.co.* / mpi.co.*),
    # so each rank runs as a coroutine continuation — no OS thread per
    # rank.  Drop the yields and call comm.Scatter(...) directly and the
    # same code runs on the greenlet/thread backends instead.
    comm = mpi.COMM_WORLD
    rank, size = mpi.rank, mpi.size
    n_local = 4096

    # rank 0 owns the full input and scatters one slice per rank
    full = np.arange(size * n_local, dtype=np.float64) if rank == 0 else None
    local = np.empty(n_local)
    yield from comm.co.Scatter(full, local, root=0)

    # local computation: the simulated clock advances by the declared flops
    local_result = np.sqrt(local + 1.0)
    yield from mpi.co.execute(flops=5.0 * n_local)

    # global statistics with collectives
    local_sum = np.array([local_result.sum()])
    total = np.empty(1)
    yield from comm.co.Allreduce(local_sum, total)

    mins = np.array([local_result.min()])
    global_min = np.empty(1)
    yield from comm.co.Reduce(mins, global_min if rank == 0 else None,
                              op=MIN, root=0)

    # a neighbour exchange, the halo pattern of stencil codes
    right, left = (rank + 1) % size, (rank - 1) % size
    halo_out = local_result[-8:].copy()
    halo_in = np.empty(8)
    yield from comm.co.Sendrecv(halo_out, right, 5, halo_in, left, 5)

    yield from comm.co.Barrier()
    if rank == 0:
        return {"total": float(total[0]), "min": float(global_min[0]),
                "t": (yield from mpi.co.wtime())}
    return None


def main() -> None:
    platform = cluster("classroom", 16, host_speed="1Gf",
                       link_bandwidth="125MBps", link_latency="50us")
    result = smpirun(app, 16, platform)
    summary = result.returns[0]
    print("simulated 16-rank run on a cluster we don't own:")
    print(f"  simulated time : {format_time(result.simulated_time)}")
    print(f"  wall-clock time: {format_time(result.wall_time)}")
    print(f"  global sum     : {summary['total']:.3f}")
    print(f"  global min     : {summary['min']:.3f}")
    expected = np.sqrt(np.arange(16 * 4096, dtype=np.float64) + 1.0).sum()
    assert np.isclose(summary["total"], expected), "on-line results must be exact"
    print("  results verified against a direct sequential computation ✓")


if __name__ == "__main__":
    main()
