#!/usr/bin/env python
"""NAS DT on a single node (paper section 7.1.4 + Fig. 16's folding).

Runs the Data Traffic benchmark's three communication schemes in
simulation, prints the communication graphs (paper Figs. 13/14), verifies
the sink checksums against a direct sequential computation (the on-line
property), and shows what RAM folding does to the footprint.

Note the class B BH/WH runs use 43 simulated processes — the paper could
not exceed 43 real nodes on its cluster; we need only this one machine.

    python examples/nas_dt_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.nas import dt_app, dt_graph, dt_reference_checksum
from repro.platforms import griffon
from repro.smpi import SmpiConfig, smpirun
from repro.units import format_size, format_time


def ascii_graph(graph) -> str:
    """Layer-by-layer rendering of the DT task graph."""
    layers: dict[int, list[int]] = {}
    for node in graph.nodes:
        layers.setdefault(node.layer, []).append(node.rank)
    lines = [f"{graph.scheme} class {graph.cls.name}: "
             f"{graph.n_ranks} processes, "
             f"{format_size(graph.total_bytes())} total traffic"]
    for layer in sorted(layers):
        ranks = layers[layer]
        shown = ", ".join(map(str, ranks[:12])) + (" ..." if len(ranks) > 12 else "")
        lines.append(f"  layer {layer}: [{shown}]")
    return "\n".join(lines)


def main() -> None:
    platform = griffon()
    for scheme in ("WH", "BH", "SH"):
        cls = "A" if scheme != "SH" else "S"
        graph = dt_graph(scheme, cls)
        print(ascii_graph(graph))
        result = smpirun(dt_app, graph.n_ranks, platform, app_args=(graph,))
        sinks = sorted(x for x in result.returns if x is not None)
        reference = sorted(dt_reference_checksum(graph))
        ok = np.allclose(sinks, reference)
        print(f"  simulated time {format_time(result.simulated_time)}, "
              f"wall {format_time(result.wall_time)}, "
              f"checksums {'verified ✓' if ok else 'MISMATCH ✗'}")
        print()

    print("RAM folding (SMPI_SHARED_MALLOC) on BH class B, 43 processes:")
    graph = dt_graph("BH", "B")
    for folded in (False, True):
        result = smpirun(
            dt_app, graph.n_ranks, platform,
            app_args=(graph, 0, folded),
            config=SmpiConfig(),
        )
        label = "folded  " if folded else "unfolded"
        print(f"  {label}: peak footprint "
              f"{format_size(result.memory.total_peak)} "
              f"(max per-rank RSS {format_size(result.memory.max_rank_rss)})")


if __name__ == "__main__":
    main()
